package ta

import "repro/internal/topk"

// This file implements the two companion algorithms from Fagin,
// Lotem, and Naor's middleware-aggregation paper (the paper's
// citation [16]): FA, Fagin's original algorithm, and NRA, the
// no-random-access algorithm. The auction engine uses TA (ta.go);
// these exist because a deployment may face different access costs —
// NRA matters when random access into another machine's sorted bid
// list is expensive, exactly the distributed setting Section II-B
// sets up for bidding programs.

// FA is Fagin's algorithm: round-robin sorted access until at least k
// objects have been seen in *every* list, then random access to
// complete all seen objects, then take the top k. Correct for
// monotone f; typically performs more accesses than TA (which
// subsumes it), shown by the Stats.
func FA(k int, sources []Source, f func(values []float64) float64) ([]topk.Item, Stats) {
	var stats Stats
	m := len(sources)
	seenIn := make(map[int]int)  // object -> count of lists it appeared in
	seenAll := 0                 // objects seen in every list
	order := make([]int, 0, 4*k) // discovery order of distinct objects
	exhausted := make([]bool, m)

	for seenAll < k {
		progressed := false
		for t := 0; t < m; t++ {
			if exhausted[t] {
				continue
			}
			id, _, ok := sources[t].Next()
			if !ok {
				exhausted[t] = true
				continue
			}
			stats.SortedAccesses++
			progressed = true
			if seenIn[id] == 0 {
				order = append(order, id)
				stats.Seen++
			}
			seenIn[id]++
			if seenIn[id] == m {
				seenAll++
			}
		}
		if !progressed {
			break // all lists exhausted; everything has been seen
		}
	}

	vals := make([]float64, m)
	h := topk.NewHeap(k)
	for _, id := range order {
		for t := 0; t < m; t++ {
			vals[t] = sources[t].Lookup(id)
		}
		stats.RandomAccesses += m
		h.Offer(topk.Item{ID: id, Score: f(vals)})
	}
	return h.Items(), stats
}

// NRA is the no-random-access algorithm: it reads the lists under
// sorted access only and maintains, for every seen object, a lower
// and an upper bound on its aggregate score (unknown attributes are
// bounded below by zero — attribute domains must be non-negative —
// and above by the list frontier). It stops when k objects' lower
// bounds dominate every other object's upper bound, and returns those
// objects with their lower-bound scores (exact once all attributes
// were observed).
//
// With distinct aggregate scores the returned ID set equals the true
// top-k; equal scores at the boundary may resolve either way, as in
// the original algorithm.
func NRA(k int, sources []Source, f func(values []float64) float64) ([]topk.Item, Stats) {
	var stats Stats
	m := len(sources)
	type state struct {
		vals  []float64
		known []bool
		nkn   int
	}
	objs := make(map[int]*state)
	frontier := make([]float64, m)
	haveFrontier := make([]bool, m)
	exhausted := make([]bool, m)
	buf := make([]float64, m)

	lower := func(s *state) float64 {
		for t := 0; t < m; t++ {
			if s.known[t] {
				buf[t] = s.vals[t]
			} else {
				buf[t] = 0
			}
		}
		return f(buf)
	}
	upper := func(s *state) float64 {
		for t := 0; t < m; t++ {
			if s.known[t] {
				buf[t] = s.vals[t]
			} else if exhausted[t] {
				// An exhausted list has shown every object it contains;
				// a missing attribute there can only be bounded by the
				// last frontier (objects may legitimately be absent
				// from no list in our model, but stay safe).
				buf[t] = frontier[t]
			} else {
				buf[t] = frontier[t]
			}
		}
		return f(buf)
	}

	for round := 0; ; round++ {
		progressed := false
		for t := 0; t < m; t++ {
			if exhausted[t] {
				continue
			}
			id, v, ok := sources[t].Next()
			if !ok {
				exhausted[t] = true
				continue
			}
			stats.SortedAccesses++
			progressed = true
			frontier[t] = v
			haveFrontier[t] = true
			s := objs[id]
			if s == nil {
				s = &state{vals: make([]float64, m), known: make([]bool, m)}
				objs[id] = s
				stats.Seen++
			}
			if !s.known[t] {
				s.known[t] = true
				s.nkn++
			}
			s.vals[t] = v
		}
		if !progressed {
			break
		}
		ready := true
		for t := 0; t < m; t++ {
			if !haveFrontier[t] && !exhausted[t] {
				ready = false
			}
			if !haveFrontier[t] {
				frontier[t] = 0
			}
		}
		if !ready || len(objs) < k {
			continue
		}
		// Candidate set: top k by lower bound (ties by ID).
		cand := topk.NewHeap(k)
		for id, s := range objs {
			cand.Offer(topk.Item{ID: id, Score: lower(s)})
		}
		items := cand.Items()
		if len(items) < k {
			continue
		}
		kth := items[len(items)-1].Score
		inCand := make(map[int]bool, k)
		for _, it := range items {
			inCand[it.ID] = true
		}
		// Stop if no other object (seen or unseen) can beat the k-th
		// lower bound.
		ok := true
		for id, s := range objs {
			if inCand[id] {
				continue
			}
			if upper(s) > kth {
				ok = false
				break
			}
		}
		if ok {
			// Unseen objects are bounded by f(frontier).
			for t := 0; t < m; t++ {
				buf[t] = frontier[t]
			}
			if f(buf) > kth {
				ok = false
			}
		}
		if ok {
			return items, stats
		}
	}

	// Lists exhausted: all attribute values known; rank directly.
	h := topk.NewHeap(k)
	for id, s := range objs {
		h.Offer(topk.Item{ID: id, Score: lower(s)})
	}
	return h.Items(), stats
}
