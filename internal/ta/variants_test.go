package ta

import (
	"math/rand"
	"testing"
)

// distinctVals builds an attribute matrix whose aggregate products
// are pairwise distinct (random continuous draws).
func distinctVals(rng *rand.Rand, n, m int) [][]float64 {
	vals := make([][]float64, n)
	for i := range vals {
		vals[i] = make([]float64, m)
		for t := range vals[i] {
			vals[i][t] = 0.1 + rng.Float64()
		}
	}
	return vals
}

func TestFAMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(421))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(50)
		m := 1 + rng.Intn(3)
		k := 1 + rng.Intn(6)
		vals := distinctVals(rng, n, m)
		got, stats := FA(k, buildSources(vals), product)
		want := naive(vals, k, product)
		if !sameScores(got, want) {
			t.Fatalf("n=%d m=%d k=%d: FA %v != naive %v", n, m, k, got, want)
		}
		if stats.SortedAccesses == 0 && n > 0 {
			t.Fatal("FA reported no sorted accesses")
		}
	}
}

func TestNRAMatchesNaiveSet(t *testing.T) {
	rng := rand.New(rand.NewSource(431))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(50)
		m := 1 + rng.Intn(3)
		k := 1 + rng.Intn(6)
		vals := distinctVals(rng, n, m)
		got, _ := NRA(k, buildSources(vals), product)
		want := naive(vals, k, product)
		if len(got) != len(want) {
			t.Fatalf("n=%d m=%d k=%d: NRA size %d, want %d", n, m, k, len(got), len(want))
		}
		wantIDs := map[int]bool{}
		for _, it := range want {
			wantIDs[it.ID] = true
		}
		for _, it := range got {
			if !wantIDs[it.ID] {
				t.Fatalf("n=%d m=%d k=%d: NRA returned %d, not in true top-k %v (got %v)",
					n, m, k, it.ID, want, got)
			}
		}
	}
}

// TestTABeatsFAOnAccesses: on a workload designed to favor early
// termination, TA must use no more sorted accesses than FA — the
// monotone-threshold cutoff dominates FA's "seen in all lists" rule.
func TestTABeatsFAOnAccesses(t *testing.T) {
	rng := rand.New(rand.NewSource(433))
	worse := 0
	const trials = 100
	for trial := 0; trial < trials; trial++ {
		n := 200
		m := 2
		k := 3
		vals := distinctVals(rng, n, m)
		_, taStats := TopK(k, buildSources(vals), product)
		_, faStats := FA(k, buildSources(vals), product)
		if taStats.SortedAccesses > faStats.SortedAccesses {
			worse++
		}
	}
	// TA is instance optimal up to a constant; allow a small number of
	// adversarial draws but not systematic loss.
	if worse > trials/10 {
		t.Fatalf("TA used more sorted accesses than FA in %d/%d trials", worse, trials)
	}
}

// TestNRAUsesNoRandomAccess is definitional.
func TestNRAUsesNoRandomAccess(t *testing.T) {
	rng := rand.New(rand.NewSource(439))
	vals := distinctVals(rng, 100, 3)
	_, stats := NRA(5, buildSources(vals), product)
	if stats.RandomAccesses != 0 {
		t.Fatalf("NRA performed %d random accesses", stats.RandomAccesses)
	}
}

func TestVariantsUniverseSmallerThanK(t *testing.T) {
	rng := rand.New(rand.NewSource(443))
	vals := distinctVals(rng, 3, 2)
	if got, _ := FA(10, buildSources(vals), product); len(got) != 3 {
		t.Fatalf("FA small universe: %v", got)
	}
	if got, _ := NRA(10, buildSources(vals), product); len(got) != 3 {
		t.Fatalf("NRA small universe: %v", got)
	}
}

func TestVariantsSingleList(t *testing.T) {
	vals := [][]float64{{5}, {9}, {2}, {7}}
	got, _ := FA(2, buildSources(vals), sum)
	if got[0].ID != 1 || got[1].ID != 3 {
		t.Fatalf("FA single list: %v", got)
	}
	got, _ = NRA(2, buildSources(vals), sum)
	ids := map[int]bool{got[0].ID: true, got[1].ID: true}
	if !ids[1] || !ids[3] {
		t.Fatalf("NRA single list: %v", got)
	}
}
