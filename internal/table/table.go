// Package table is the in-memory relational substrate for bidding
// programs (Section II-B): typed schemas, rows, scalar variables, and
// per-table insert triggers. Each advertiser's bidding program runs
// against a private database holding its Keywords and Bids tables and
// advertiser-specific scalars (amount spent, target spending rate),
// plus tables the search provider shares read-only, such as the
// current Query. Because programs touch only private and read-only
// shared state, they never interact and can run in parallel — the
// property the paper relies on for distributing program evaluation.
package table

import (
	"fmt"
	"strconv"
)

// Kind is the type of a Value.
type Kind int

// Value kinds.
const (
	Null Kind = iota
	Float
	String
	Bool
)

// Value is a typed SQL value.
type Value struct {
	Kind Kind
	F    float64
	S    string
	B    bool
}

// Convenience constructors.
func F(f float64) Value { return Value{Kind: Float, F: f} }
func S(s string) Value  { return Value{Kind: String, S: s} }
func B(b bool) Value    { return Value{Kind: Bool, B: b} }
func N() Value          { return Value{Kind: Null} }

// String renders the value for display and error messages.
func (v Value) String() string {
	switch v.Kind {
	case Float:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case String:
		return v.S
	case Bool:
		if v.B {
			return "TRUE"
		}
		return "FALSE"
	default:
		return "NULL"
	}
}

// Truthy reports whether the value counts as true in a condition:
// TRUE, a non-zero number, or a non-empty string. NULL is false.
func (v Value) Truthy() bool {
	switch v.Kind {
	case Bool:
		return v.B
	case Float:
		return v.F != 0
	case String:
		return v.S != ""
	default:
		return false
	}
}

// Equal implements SQL-style equality: values of different kinds are
// unequal, and NULL equals nothing (not even NULL).
func (v Value) Equal(o Value) bool {
	if v.Kind == Null || o.Kind == Null || v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case Float:
		return v.F == o.F
	case String:
		return v.S == o.S
	default:
		return v.B == o.B
	}
}

// Compare orders two values of the same kind: −1, 0, or +1. It
// returns an error for NULLs or mismatched kinds.
func (v Value) Compare(o Value) (int, error) {
	if v.Kind == Null || o.Kind == Null {
		return 0, fmt.Errorf("table: cannot order NULL")
	}
	if v.Kind != o.Kind {
		return 0, fmt.Errorf("table: cannot compare %v with %v", v, o)
	}
	switch v.Kind {
	case Float:
		switch {
		case v.F < o.F:
			return -1, nil
		case v.F > o.F:
			return 1, nil
		}
		return 0, nil
	case String:
		switch {
		case v.S < o.S:
			return -1, nil
		case v.S > o.S:
			return 1, nil
		}
		return 0, nil
	default:
		return 0, fmt.Errorf("table: cannot order booleans")
	}
}

// Column is a named, typed column.
type Column struct {
	Name string
	Kind Kind
}

// Row is one tuple; its length always matches the table's schema.
type Row []Value

// Table is a named relation with an insert-trigger list.
type Table struct {
	Name    string
	Columns []Column
	Rows    []Row

	colIndex map[string]int
	triggers []func(inserted Row) error
}

// New creates an empty table.
func New(name string, cols ...Column) *Table {
	t := &Table{Name: name, Columns: cols, colIndex: make(map[string]int, len(cols))}
	for i, c := range cols {
		t.colIndex[c.Name] = i
	}
	return t
}

// Col returns the index of the named column.
func (t *Table) Col(name string) (int, bool) {
	i, ok := t.colIndex[name]
	return i, ok
}

// Insert appends a row and fires insert triggers in registration
// order. The row length must match the schema.
func (t *Table) Insert(row Row) error {
	if len(row) != len(t.Columns) {
		return fmt.Errorf("table %s: insert arity %d, want %d", t.Name, len(row), len(t.Columns))
	}
	t.Rows = append(t.Rows, row)
	for _, fn := range t.triggers {
		if err := fn(row); err != nil {
			return err
		}
	}
	return nil
}

// OnInsert registers a trigger fired after each insert — the
// substrate for the paper's "CREATE TRIGGER … AFTER INSERT ON Query".
func (t *Table) OnInsert(fn func(inserted Row) error) { t.triggers = append(t.triggers, fn) }

// DB is a collection of tables and scalar variables forming one
// bidding program's world: its private tables plus read-only shared
// ones, and scalars like amtSpent, time, and targetSpendRate.
type DB struct {
	tables  map[string]*Table
	scalars map[string]Value
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{tables: make(map[string]*Table), scalars: make(map[string]Value)}
}

// Add registers a table; it replaces any previous table of that name.
func (db *DB) Add(t *Table) { db.tables[t.Name] = t }

// Table looks up a table by name.
func (db *DB) Table(name string) (*Table, bool) {
	t, ok := db.tables[name]
	return t, ok
}

// SetScalar sets a scalar variable.
func (db *DB) SetScalar(name string, v Value) { db.scalars[name] = v }

// Scalar reads a scalar variable.
func (db *DB) Scalar(name string) (Value, bool) {
	v, ok := db.scalars[name]
	return v, ok
}
