package table

import "testing"

func TestValueBasics(t *testing.T) {
	if F(3).String() != "3" || S("x").String() != "x" || B(true).String() != "TRUE" || N().String() != "NULL" {
		t.Fatal("value rendering broken")
	}
	if !F(1).Truthy() || F(0).Truthy() || !S("a").Truthy() || S("").Truthy() || N().Truthy() {
		t.Fatal("truthiness broken")
	}
	if !F(2).Equal(F(2)) || F(2).Equal(F(3)) || F(2).Equal(S("2")) || N().Equal(N()) {
		t.Fatal("equality broken")
	}
}

func TestValueCompare(t *testing.T) {
	if c, err := F(1).Compare(F(2)); err != nil || c != -1 {
		t.Fatalf("compare floats: %d %v", c, err)
	}
	if c, err := S("b").Compare(S("a")); err != nil || c != 1 {
		t.Fatalf("compare strings: %d %v", c, err)
	}
	if _, err := F(1).Compare(S("a")); err == nil {
		t.Fatal("cross-kind compare should error")
	}
	if _, err := N().Compare(F(1)); err == nil {
		t.Fatal("NULL compare should error")
	}
	if _, err := B(true).Compare(B(false)); err == nil {
		t.Fatal("bool ordering should error")
	}
}

func TestTableInsertAndTrigger(t *testing.T) {
	tbl := New("Query", Column{"kw", String}, Column{"t", Float})
	var fired []string
	tbl.OnInsert(func(r Row) error {
		fired = append(fired, r[0].S)
		return nil
	})
	if err := tbl.Insert(Row{S("boot"), F(1)}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(Row{S("shoe"), F(2)}); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[0] != "boot" || fired[1] != "shoe" {
		t.Fatalf("triggers fired %v", fired)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
}

func TestInsertArity(t *testing.T) {
	tbl := New("T", Column{"a", Float})
	if err := tbl.Insert(Row{F(1), F(2)}); err == nil {
		t.Fatal("arity mismatch should error")
	}
}

func TestColLookup(t *testing.T) {
	tbl := New("T", Column{"a", Float}, Column{"b", String})
	if i, ok := tbl.Col("b"); !ok || i != 1 {
		t.Fatalf("Col(b) = %d %v", i, ok)
	}
	if _, ok := tbl.Col("zzz"); ok {
		t.Fatal("missing column found")
	}
}

func TestDBScalars(t *testing.T) {
	db := NewDB()
	db.SetScalar("time", F(7))
	v, ok := db.Scalar("time")
	if !ok || v.F != 7 {
		t.Fatalf("scalar = %v %v", v, ok)
	}
	if _, ok := db.Scalar("missing"); ok {
		t.Fatal("missing scalar found")
	}
	tbl := New("T", Column{"a", Float})
	db.Add(tbl)
	if got, ok := db.Table("T"); !ok || got != tbl {
		t.Fatal("table lookup broken")
	}
}
