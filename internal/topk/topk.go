// Package topk provides bounded top-k selection and the parallel
// tree-aggregation scheme of Section III-E ("Parallelization"): each
// leaf holds one advertiser's expected revenue for a slot, internal
// nodes merge their children's top-k lists, and the root ends up with
// the k highest bidders for that slot.
package topk

import "sort"

// Item is a scored element; ID is the caller's index for the element
// (an advertiser index in the paper's setting).
type Item struct {
	ID    int
	Score float64
}

// Heap is a bounded min-heap holding the k largest items offered so
// far. The zero value is not usable; construct with NewHeap.
type Heap struct {
	k     int
	items []Item // min-heap on Score; ties broken by larger ID at root
}

// NewHeap returns a bounded heap retaining the k highest-scored items.
// k must be positive.
func NewHeap(k int) *Heap {
	if k <= 0 {
		panic("topk: NewHeap requires k > 0")
	}
	return &Heap{k: k, items: make([]Item, 0, k)}
}

// less orders the heap so the *smallest* (and, among equals, the
// highest-ID, to make eviction deterministic) item sits at the root.
func less(a, b Item) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.ID > b.ID
}

// Offer considers an item for inclusion, evicting the current minimum
// if the heap is full and the new item scores higher.
func (h *Heap) Offer(it Item) {
	if len(h.items) < h.k {
		h.items = append(h.items, it)
		h.up(len(h.items) - 1)
		return
	}
	if !less(h.items[0], it) {
		return
	}
	h.items[0] = it
	h.down(0)
}

// Len returns the number of retained items.
func (h *Heap) Len() int { return len(h.items) }

// Reset empties the heap for reuse, keeping its capacity and bound k.
func (h *Heap) Reset() { h.items = h.items[:0] }

// DrainDesc empties the heap, appending its items to dst in the same
// order Items returns them — descending score, ascending ID on ties —
// without allocating when dst has capacity. The heap is left empty.
//
// Popping the min-heap yields items sorted ascending by score with
// ties broken by descending ID (the less ordering), so filling the
// appended region back-to-front reproduces Items' order exactly.
func (h *Heap) DrainDesc(dst []Item) []Item {
	n := len(h.items)
	start := len(dst)
	dst = append(dst, h.items...) // grow (or reuse) the destination
	for i := n - 1; i >= 0; i-- {
		dst[start+i] = h.popMin()
	}
	return dst
}

// popMin removes and returns the least item under less.
func (h *Heap) popMin() Item {
	min := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	return min
}

// Min returns the lowest retained item. It panics on an empty heap.
func (h *Heap) Min() Item { return h.items[0] }

// Items returns the retained items sorted by descending score (ties
// by ascending ID). The heap remains valid.
func (h *Heap) Items() []Item {
	out := make([]Item, len(h.items))
	copy(out, h.items)
	sortDesc(out)
	return out
}

func (h *Heap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !less(h.items[i], h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *Heap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && less(h.items[l], h.items[smallest]) {
			smallest = l
		}
		if r < n && less(h.items[r], h.items[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}

// sortDesc sorts items by descending score, ascending ID on ties.
func sortDesc(items []Item) {
	sort.Slice(items, func(a, b int) bool {
		if items[a].Score != items[b].Score {
			return items[a].Score > items[b].Score
		}
		return items[a].ID < items[b].ID
	})
}

// Select returns the k highest-scoring indices i in [0, n) under the
// score function, sorted by descending score. It runs in O(n log k)
// using a bounded heap, the cost the paper assigns to finding the top
// k bidders for one slot.
func Select(n, k int, score func(i int) float64) []Item {
	h := NewHeap(k)
	for i := 0; i < n; i++ {
		h.Offer(Item{ID: i, Score: score(i)})
	}
	return h.Items()
}

// SelectInto is Select reusing heap h (which fixes k) and dst's
// capacity: the serving engine's allocation-free variant. It resets h,
// offers all n candidates, and returns the top-k appended to dst[:0]'s
// region — the caller passes dst = previousList[:0] to recycle the
// backing array. Ordering is identical to Select.
func SelectInto(h *Heap, dst []Item, n int, score func(i int) float64) []Item {
	h.Reset()
	for i := 0; i < n; i++ {
		h.Offer(Item{ID: i, Score: score(i)})
	}
	return h.DrainDesc(dst)
}

// Merge combines two descending top-k lists into one descending list
// of at most k items, the internal-node operation of the aggregation
// tree. Both inputs must already be sorted descending.
func Merge(k int, a, b []Item) []Item {
	out := make([]Item, 0, k)
	i, j := 0, 0
	for len(out) < k && (i < len(a) || j < len(b)) {
		switch {
		case i >= len(a):
			out = append(out, b[j])
			j++
		case j >= len(b):
			out = append(out, a[i])
			i++
		case a[i].Score > b[j].Score || (a[i].Score == b[j].Score && a[i].ID <= b[j].ID):
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	return out
}
