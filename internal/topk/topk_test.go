package topk

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// naiveTopK is the reference: full sort, take k.
func naiveTopK(scores []float64, k int) []Item {
	items := make([]Item, len(scores))
	for i, s := range scores {
		items[i] = Item{ID: i, Score: s}
	}
	sortDesc(items)
	if len(items) > k {
		items = items[:k]
	}
	return items
}

func TestSelectAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(50)
		k := 1 + rng.Intn(8)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = float64(rng.Intn(10)) // many ties on purpose
		}
		got := Select(n, k, func(i int) float64 { return scores[i] })
		want := naiveTopK(scores, k)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d k=%d scores=%v:\n got %v\nwant %v", n, k, scores, got, want)
		}
	}
}

func TestSelectProperty(t *testing.T) {
	f := func(scores []float64, kk uint8) bool {
		k := int(kk%10) + 1
		for i, s := range scores {
			if s != s { // NaN breaks any ordering; exclude
				scores[i] = 0
			}
		}
		got := Select(len(scores), k, func(i int) float64 { return scores[i] })
		want := naiveTopK(scores, k)
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHeapOfferEviction(t *testing.T) {
	h := NewHeap(2)
	h.Offer(Item{0, 5})
	h.Offer(Item{1, 7})
	h.Offer(Item{2, 6})
	items := h.Items()
	if len(items) != 2 || items[0].ID != 1 || items[1].ID != 2 {
		t.Fatalf("got %v, want [{1 7} {2 6}]", items)
	}
	if h.Min().ID != 2 {
		t.Fatalf("Min = %v, want ID 2", h.Min())
	}
}

func TestHeapTieBreaksPreferLowerID(t *testing.T) {
	h := NewHeap(2)
	for id := 4; id >= 0; id-- {
		h.Offer(Item{id, 1})
	}
	items := h.Items()
	if items[0].ID != 0 || items[1].ID != 1 {
		t.Fatalf("ties should keep lowest IDs, got %v", items)
	}
}

func TestMerge(t *testing.T) {
	a := []Item{{0, 9}, {1, 5}, {2, 1}}
	b := []Item{{3, 7}, {4, 5}, {5, 2}}
	got := Merge(4, a, b)
	want := []Item{{0, 9}, {3, 7}, {1, 5}, {4, 5}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Merge = %v, want %v", got, want)
	}
	if got := Merge(3, nil, b); !reflect.DeepEqual(got, b) {
		t.Fatalf("Merge with empty a = %v", got)
	}
}

func TestParallelSelectMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(400)
		k := 1 + rng.Intn(6)
		p := 1 + rng.Intn(8)
		scores := make([][]float64, n)
		for i := range scores {
			scores[i] = make([]float64, k)
			for j := range scores[i] {
				scores[i][j] = rng.Float64() * 100
			}
		}
		par := ParallelSelect(n, k, p, func(i, j int) float64 { return scores[i][j] })
		for j := 0; j < k; j++ {
			seq := Select(n, k, func(i int) float64 { return scores[i][j] })
			if !reflect.DeepEqual(par[j], seq) {
				t.Fatalf("slot %d: parallel %v != sequential %v (n=%d k=%d p=%d)",
					j, par[j], seq, n, k, p)
			}
		}
	}
}

func TestParallelSelectEmpty(t *testing.T) {
	out := ParallelSelect(0, 3, 4, func(i, j int) float64 { return 0 })
	if len(out) != 3 {
		t.Fatalf("want 3 empty slot lists, got %d", len(out))
	}
	for _, l := range out {
		if len(l) != 0 {
			t.Fatalf("want empty list, got %v", l)
		}
	}
}

// TestSelectIntoMatchesSelect: the reusable-heap variant must return
// byte-identical lists to Select across many shapes (including heavy
// ties), while recycling both the heap and the destination slice.
func TestSelectIntoMatchesSelect(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, k := range []int{1, 2, 7, 16} {
		h := NewHeap(k)
		var dst []Item
		for trial := 0; trial < 100; trial++ {
			n := rng.Intn(60)
			scores := make([]float64, n)
			for i := range scores {
				scores[i] = float64(rng.Intn(6)) // force ties
			}
			score := func(i int) float64 { return scores[i] }
			dst = SelectInto(h, dst[:0], n, score)
			want := Select(n, k, score)
			if !reflect.DeepEqual(append([]Item{}, dst...), append([]Item{}, want...)) {
				t.Fatalf("k=%d n=%d scores=%v:\n got %v\nwant %v", k, n, scores, dst, want)
			}
			if h.Len() != 0 {
				t.Fatalf("heap not drained: %d items left", h.Len())
			}
		}
	}
}

// TestSelectIsSorted double-checks the output contract used by the
// threshold algorithm and merge steps.
func TestSelectIsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	scores := make([]float64, 1000)
	for i := range scores {
		scores[i] = rng.NormFloat64()
	}
	out := Select(len(scores), 20, func(i int) float64 { return scores[i] })
	if !sort.SliceIsSorted(out, func(a, b int) bool { return out[a].Score > out[b].Score }) {
		t.Fatalf("Select output not sorted: %v", out)
	}
}
