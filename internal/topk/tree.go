package topk

import "sync"

// ParallelSelect computes, for every slot j in [0, k), the top k
// highest-scoring advertisers under score(i, j), using p workers
// arranged as the paper's aggregation tree (Section III-E): the
// advertiser range is split into p leaves, each leaf computes local
// per-slot top-k lists, and the lists are merged pairwise up a binary
// tree. The result is indexed by slot, each list sorted descending.
//
// With p workers the sequential O(nk log k) scan becomes
// O(n/p · k log k + k log p) critical-path work, matching the
// O((n/p) k log k + k log p + k^5) bound in the paper.
func ParallelSelect(n, k, p int, score func(i, j int) float64) [][]Item {
	return ParallelSelectDepth(n, k, k, p, score)
}

// ParallelSelectDepth is ParallelSelect with the list depth decoupled
// from the slot count: each slot's list retains the top `depth`
// advertisers (the simulation uses depth k+1 so second-price
// computation always finds an unassigned runner-up).
func ParallelSelectDepth(n, k, depth, p int, score func(i, j int) float64) [][]Item {
	if p < 1 {
		p = 1
	}
	if p > n {
		p = n
	}
	if n == 0 {
		return make([][]Item, k)
	}

	// Leaf phase: each worker scans a contiguous advertiser range.
	local := make([][][]Item, p) // worker -> slot -> descending top-depth
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		lo := w * n / p
		hi := (w + 1) * n / p
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			lists := make([][]Item, k)
			for j := 0; j < k; j++ {
				h := NewHeap(depth)
				for i := lo; i < hi; i++ {
					h.Offer(Item{ID: i, Score: score(i, j)})
				}
				lists[j] = h.Items()
			}
			local[w] = lists
		}(w, lo, hi)
	}
	wg.Wait()

	// Merge phase: pairwise tree reduction, O(log p) levels.
	for len(local) > 1 {
		half := (len(local) + 1) / 2
		next := make([][][]Item, half)
		var mg sync.WaitGroup
		for i := 0; i < half; i++ {
			a := local[2*i]
			if 2*i+1 >= len(local) {
				next[i] = a
				continue
			}
			b := local[2*i+1]
			mg.Add(1)
			go func(i int, a, b [][]Item) {
				defer mg.Done()
				merged := make([][]Item, k)
				for j := 0; j < k; j++ {
					merged[j] = Merge(depth, a[j], b[j])
				}
				next[i] = merged
			}(i, a, b)
		}
		mg.Wait()
		local = next
	}
	return local[0]
}
