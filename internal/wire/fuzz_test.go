package wire

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/engine"
	"repro/internal/workload"
)

// fuzzSeeds builds the seed inputs shared by FuzzWireDecode's f.Add
// calls and the checked-in corpus under testdata/fuzz/FuzzWireDecode:
// one valid frame of several kinds, a multi-frame stream, and the
// corruption shapes the decoder must reject without panicking — torn
// header, torn payload, oversized declared length, and a flipped CRC.
func fuzzSeeds() [][]byte {
	adv := workload.Advertiser{
		Value: []int{3, 1}, InitialBid: []int{2, 1},
		ClickProb: []float64{0.5}, Target: 1, Budget: 10,
	}
	out := &engine.Outcome{
		Query: 2, AdvOf: []int{1, -1}, PricePerClick: []float64{1.5, 0},
		Clicked: []bool{true, false}, Revenue: 1.5,
	}
	st := &ServerStats{Submitted: 5, Served: 4, Shed: 1}
	stream := AppendAuctionReq(nil, 1, 7)
	stream = AppendTextReq(stream, 2, "shoes")
	stream = AppendBatchReq(stream, 3, []int{1, 2, 3})
	stream = AppendOutcomeResp(stream, 4, out)
	stream = AppendStatsResp(stream, 5, st)

	torn := AppendDrainReq(nil, 6)
	badCRC := AppendAddReq(nil, 7, &adv)
	badCRC[len(badCRC)-1] ^= 0x01
	oversized := AppendRemoveReq(nil, 8, 1)
	binary.LittleEndian.PutUint32(oversized, 1<<28)

	return [][]byte{
		AppendAuctionReq(nil, 1, 0),
		AppendAddReq(nil, 9, &adv),
		AppendRejectedResp(nil, 10, ReasonWindow),
		AppendErrorResp(nil, 11, "bad request"),
		AppendBatchResp(nil, 12, &BatchResult{Requested: 3, Served: 3}),
		stream,
		torn[:len(torn)-3],
		badCRC,
		oversized,
		{},
	}
}

// FuzzWireDecode pins the frame decoder's crash-safety contract, the
// same one FuzzJournalRecover pins for the spend journal: arbitrary
// bytes — torn frames, oversized length fields, corrupted checksums,
// and structurally valid frames with hostile payloads — must either
// decode or error with a reason. Never a panic, never an out-of-range
// index, never an attacker-sized allocation (the reader limit and the
// per-count overrun checks bound every allocation by the input size).
func FuzzWireDecode(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data), 1<<16)
		var req Request
		var resp Response
		for {
			p, err := fr.Next()
			if err != nil {
				break
			}
			// A valid frame's payload may still be garbage; both
			// decoders must handle it. Decode twice to cover request
			// and response interpretations of the same bytes.
			_ = req.Decode(p)
			_ = resp.Decode(p)
		}
		// And the decoders must survive unframed garbage directly.
		_ = req.Decode(data)
		_ = resp.Decode(data)
	})
}

// TestRegenerateFuzzCorpus rewrites the checked-in seed corpus under
// testdata/fuzz/FuzzWireDecode from fuzzSeeds. It only runs when
// WIRE_REGEN_CORPUS=1 — normally it just asserts the corpus exists,
// so an accidentally deleted corpus fails loudly instead of silently
// weakening the CI fuzz-smoke step.
func TestRegenerateFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzWireDecode")
	if os.Getenv("WIRE_REGEN_CORPUS") != "1" {
		ents, err := os.ReadDir(dir)
		if err != nil || len(ents) == 0 {
			t.Fatalf("seed corpus missing at %s (regenerate with WIRE_REGEN_CORPUS=1): %v", dir, err)
		}
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, s := range fuzzSeeds() {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", s)
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
