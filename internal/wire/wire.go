// Package wire is the binary serving protocol: the length-prefixed,
// CRC-checksummed frame format and the request/response payload
// encodings that internal/server speaks on the accept side and
// internal/client speaks on the dial side.
//
// # Frame format
//
// Every message after the connection handshake is one frame,
// borrowing the exact physical idiom of internal/journal's records:
//
//	u32 payloadLen (LE) | u32 CRC32-IEEE(payload) (LE) | payload
//
// A FrameReader rejects frames whose declared length exceeds its
// limit (a corrupted or hostile length field never provokes a huge
// allocation), detects torn headers and torn payloads (short reads
// mid-frame), and verifies the checksum before handing the payload
// out. Like journal recovery, every corruption is an error with a
// reason — never a panic — which FuzzWireDecode pins.
//
// # Handshake
//
// The dialer opens with the 8-byte Magic ("SSAWIR01" — version in the
// name, bump for incompatible changes). The server answers with the
// same magic followed by one status byte: HandshakeOK admits the
// connection, HandshakeFull (per-server connection cap) and
// HandshakeDraining (graceful drain in progress) reject it. Only
// after an OK handshake do frames flow.
//
// # Payloads
//
// A payload is `u8 kind | u64 requestID (LE) | body`. Request kinds
// occupy 0x01..0x7f, response kinds 0x81..0xff, so a decoder can tell
// the direction from the kind byte alone. The request ID is opaque to
// the server and echoed verbatim in the matching response — the
// client uses it to correlate pipelined requests. All integers are
// little-endian and all float64s travel as math.Float64bits, so a
// decoded outcome is bit-exact against the serving market's — the
// property the loopback equivalence tests assert.
//
// Encoders are append-style (Append*Req/Append*Resp) writing complete
// frames into caller-owned buffers, and decoders fill reusable
// Request/Response structs whose slices are grown once and reused —
// together they keep the steady-state serve path on both ends of the
// socket at zero heap allocations per auction.
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/workload"
)

// Magic opens every connection in both directions; the trailing 01 is
// the protocol version.
const Magic = "SSAWIR01"

// Handshake status bytes, sent by the server after the magic echo.
const (
	// HandshakeOK admits the connection.
	HandshakeOK byte = 0
	// HandshakeFull rejects: the server is at its connection cap.
	HandshakeFull byte = 1
	// HandshakeDraining rejects: a graceful drain is in progress.
	HandshakeDraining byte = 2
)

// MaxFrame is the default per-frame payload limit. Nothing the
// protocol carries legitimately approaches it; it exists so a
// corrupted length field fails fast instead of allocating.
const MaxFrame = 1 << 20

// frameHeader is the fixed per-frame prefix: u32 len + u32 crc.
const frameHeader = 8

// Kind tags a payload. Requests are < 0x80, responses ≥ 0x80.
type Kind uint8

const (
	// KindAuction runs one auction for a routed keyword.
	// Body: u32 keyword.
	KindAuction Kind = 0x01
	// KindText routes free text through the keyword index and runs
	// the matched keyword's auction. Body: u16 len | bytes.
	KindText Kind = 0x02
	// KindBatch submits many keywords under one request ID and one
	// in-flight window slot; the response aggregates.
	// Body: u32 count | count × u32 keyword.
	KindBatch Kind = 0x03
	// KindStats requests a live server statistics snapshot. No body.
	KindStats Kind = 0x04
	// KindReset performs a live budget reset ("next day" fence). No
	// body.
	KindReset Kind = 0x05
	// KindDrain begins a graceful drain: intake stops, queued
	// auctions finish, and the response carries the final stats. No
	// body.
	KindDrain Kind = 0x06
	// KindAdd admits an advertiser into the live population (an
	// epoch-fence churn). Body: the serialized advertiser.
	KindAdd Kind = 0x07
	// KindRemove evicts advertiser i. Body: u32 index.
	KindRemove Kind = 0x08
	// KindStatsV2 requests the extended statistics snapshot: the v1
	// ServerStats plus the serving latency histogram. No body.
	KindStatsV2 Kind = 0x09

	// KindOutcome answers an auction with the full outcome.
	// Body: u32 query | u64 revenueBits | u16 slots |
	// slots × (u32 advertiser (two's-complement int32; -1 = unfilled)
	// | u64 priceBits | u8 clicked).
	KindOutcome Kind = 0x81
	// KindShed answers an auction dropped by the stream layer's Shed
	// overload policy. No body.
	KindShed Kind = 0x82
	// KindRejected answers a request refused at the connection layer.
	// Body: u8 reason.
	KindRejected Kind = 0x83
	// KindBatchResult aggregates a KindBatch.
	// Body: 5 × u32 (requested, served, shed, rejected, clicks) |
	// u64 revenueBits.
	KindBatchResult Kind = 0x84
	// KindStatsResult carries a ServerStats snapshot.
	// Body: statsFields × u64.
	KindStatsResult Kind = 0x85
	// KindOK acknowledges a bodiless success (reset, remove). No body.
	KindOK Kind = 0x86
	// KindAdded acknowledges KindAdd. Body: u32 new advertiser index.
	KindAdded Kind = 0x87
	// KindError reports a request-level failure; the connection stays
	// usable. Body: u16 len | message bytes.
	KindError Kind = 0x88
	// KindUnrouted answers a KindText that matched no catalog
	// keyword. No body.
	KindUnrouted Kind = 0x89
	// KindStatsV2Result carries a ServerStatsV2: the v1 stats words
	// followed by the latency histogram snapshot.
	// Body: statsFields × u64 | u64 count | u64 sumNs | u64 maxNs |
	// u32 nonzeroBuckets | nonzeroBuckets × (u32 index | u64 count).
	KindStatsV2Result Kind = 0x8a
)

// RejectReason explains a KindRejected response.
type RejectReason uint8

const (
	// ReasonWindow: Shed overload policy and the per-connection
	// in-flight window was full.
	ReasonWindow RejectReason = 1
	// ReasonDraining: the server is draining; no new auctions.
	ReasonDraining RejectReason = 2
	// ReasonClosed: the stream layer underneath had already closed.
	ReasonClosed RejectReason = 3
)

// String implements fmt.Stringer.
func (r RejectReason) String() string {
	switch r {
	case ReasonWindow:
		return "window full"
	case ReasonDraining:
		return "draining"
	case ReasonClosed:
		return "closed"
	default:
		return fmt.Sprintf("RejectReason(%d)", uint8(r))
	}
}

// ---------------------------------------------------------------------------
// Frame writing

// beginFrame reserves the 8-byte header; endFrame back-fills it once
// the payload is in place. start is len(dst) before beginFrame.
func beginFrame(dst []byte) []byte {
	return append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
}

func endFrame(dst []byte, start int) []byte {
	payload := dst[start+frameHeader:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.ChecksumIEEE(payload))
	return dst
}

func appendHeader(dst []byte, kind Kind, id uint64) []byte {
	dst = append(dst, byte(kind))
	return binary.LittleEndian.AppendUint64(dst, id)
}

// ---------------------------------------------------------------------------
// Frame reading

// FrameReader reads frames off a byte stream. The payload returned by
// Next is valid only until the following Next call (the backing
// buffer is reused).
type FrameReader struct {
	r   io.Reader
	buf []byte
	max int
	// hdr is the header scratch; a local array would escape through
	// the io.Reader interface and cost one allocation per frame.
	hdr [frameHeader]byte
}

// NewFrameReader wraps r; maxPayload ≤ 0 selects MaxFrame. r should
// already be buffered if syscall-per-frame matters (the server and
// client both hand in a bufio.Reader).
func NewFrameReader(r io.Reader, maxPayload int) *FrameReader {
	if maxPayload <= 0 {
		maxPayload = MaxFrame
	}
	return &FrameReader{r: r, max: maxPayload}
}

// Next reads one frame and returns its checksum-verified payload. A
// cleanly closed stream at a frame boundary returns io.EOF; a stream
// cut mid-frame, an oversized declared length, or a checksum mismatch
// return descriptive errors (never a panic).
func (fr *FrameReader) Next() ([]byte, error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("wire: torn frame header: %w", err)
		}
		return nil, err
	}
	n := binary.LittleEndian.Uint32(fr.hdr[:4])
	want := binary.LittleEndian.Uint32(fr.hdr[4:])
	if int64(n) > int64(fr.max) {
		return nil, fmt.Errorf("wire: frame payload length %d exceeds limit %d", n, fr.max)
	}
	if cap(fr.buf) < int(n) {
		fr.buf = make([]byte, n)
	}
	p := fr.buf[:n]
	if _, err := io.ReadFull(fr.r, p); err != nil {
		return nil, fmt.Errorf("wire: torn frame payload: %w", err)
	}
	if got := crc32.ChecksumIEEE(p); got != want {
		return nil, fmt.Errorf("wire: frame checksum mismatch: computed %08x, header says %08x", got, want)
	}
	return p, nil
}

// PeekID extracts the kind and request ID from a payload without
// decoding the body — the client's dispatch step.
func PeekID(p []byte) (Kind, uint64, error) {
	if len(p) < 9 {
		return 0, 0, fmt.Errorf("wire: payload too short for header: %d bytes", len(p))
	}
	return Kind(p[0]), binary.LittleEndian.Uint64(p[1:]), nil
}

// ---------------------------------------------------------------------------
// Request encoding

// AppendAuctionReq appends a complete KindAuction frame.
func AppendAuctionReq(dst []byte, id uint64, q int) []byte {
	start := len(dst)
	dst = beginFrame(dst)
	dst = appendHeader(dst, KindAuction, id)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(q))
	return endFrame(dst, start)
}

// AppendTextReq appends a complete KindText frame.
func AppendTextReq(dst []byte, id uint64, query string) []byte {
	start := len(dst)
	dst = beginFrame(dst)
	dst = appendHeader(dst, KindText, id)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(query)))
	dst = append(dst, query...)
	return endFrame(dst, start)
}

// AppendBatchReq appends a complete KindBatch frame.
func AppendBatchReq(dst []byte, id uint64, qs []int) []byte {
	start := len(dst)
	dst = beginFrame(dst)
	dst = appendHeader(dst, KindBatch, id)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(qs)))
	for _, q := range qs {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(q))
	}
	return endFrame(dst, start)
}

// AppendStatsReq appends a complete KindStats frame.
func AppendStatsReq(dst []byte, id uint64) []byte {
	start := len(dst)
	dst = beginFrame(dst)
	dst = appendHeader(dst, KindStats, id)
	return endFrame(dst, start)
}

// AppendResetReq appends a complete KindReset frame.
func AppendResetReq(dst []byte, id uint64) []byte {
	start := len(dst)
	dst = beginFrame(dst)
	dst = appendHeader(dst, KindReset, id)
	return endFrame(dst, start)
}

// AppendDrainReq appends a complete KindDrain frame.
func AppendDrainReq(dst []byte, id uint64) []byte {
	start := len(dst)
	dst = beginFrame(dst)
	dst = appendHeader(dst, KindDrain, id)
	return endFrame(dst, start)
}

// AppendAddReq appends a complete KindAdd frame carrying a. Layout:
// u32 target | u64 budgetBits | u8 heavy | u32 keywords |
// keywords × u32 value | keywords × u32 initialBid |
// u32 slots | slots × u64 clickProbBits.
func AppendAddReq(dst []byte, id uint64, a *workload.Advertiser) []byte {
	start := len(dst)
	dst = beginFrame(dst)
	dst = appendHeader(dst, KindAdd, id)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(a.Target))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(a.Budget))
	if a.Heavy {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(a.Value)))
	for _, v := range a.Value {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
	}
	if a.InitialBid == nil {
		// Resolve the nil convention (bid = value/2) at encode time so
		// the decoder always reads exactly len(Value) bids.
		for _, v := range a.Value {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(v/2))
		}
	} else {
		for _, b := range a.InitialBid {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(b))
		}
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(a.ClickProb)))
	for _, p := range a.ClickProb {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p))
	}
	return endFrame(dst, start)
}

// AppendStatsV2Req appends a complete KindStatsV2 frame.
func AppendStatsV2Req(dst []byte, id uint64) []byte {
	start := len(dst)
	dst = beginFrame(dst)
	dst = appendHeader(dst, KindStatsV2, id)
	return endFrame(dst, start)
}

// AppendRemoveReq appends a complete KindRemove frame.
func AppendRemoveReq(dst []byte, id uint64, i int) []byte {
	start := len(dst)
	dst = beginFrame(dst)
	dst = appendHeader(dst, KindRemove, id)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(i))
	return endFrame(dst, start)
}

// ---------------------------------------------------------------------------
// Response encoding

// AppendOutcomeResp appends a complete KindOutcome frame serializing
// out bit-exactly (revenue and prices as Float64bits).
func AppendOutcomeResp(dst []byte, id uint64, out *engine.Outcome) []byte {
	start := len(dst)
	dst = beginFrame(dst)
	dst = appendHeader(dst, KindOutcome, id)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(out.Query))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(out.Revenue))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(out.AdvOf)))
	for j := range out.AdvOf {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(out.AdvOf[j])))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(out.PricePerClick[j]))
		if out.Clicked[j] {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	return endFrame(dst, start)
}

// AppendShedResp appends a complete KindShed frame.
func AppendShedResp(dst []byte, id uint64) []byte {
	start := len(dst)
	dst = beginFrame(dst)
	dst = appendHeader(dst, KindShed, id)
	return endFrame(dst, start)
}

// AppendRejectedResp appends a complete KindRejected frame.
func AppendRejectedResp(dst []byte, id uint64, reason RejectReason) []byte {
	start := len(dst)
	dst = beginFrame(dst)
	dst = appendHeader(dst, KindRejected, id)
	dst = append(dst, byte(reason))
	return endFrame(dst, start)
}

// AppendUnroutedResp appends a complete KindUnrouted frame.
func AppendUnroutedResp(dst []byte, id uint64) []byte {
	start := len(dst)
	dst = beginFrame(dst)
	dst = appendHeader(dst, KindUnrouted, id)
	return endFrame(dst, start)
}

// AppendBatchResp appends a complete KindBatchResult frame.
func AppendBatchResp(dst []byte, id uint64, br *BatchResult) []byte {
	start := len(dst)
	dst = beginFrame(dst)
	dst = appendHeader(dst, KindBatchResult, id)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(br.Requested))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(br.Served))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(br.Shed))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(br.Rejected))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(br.Clicks))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(br.Revenue))
	return endFrame(dst, start)
}

// AppendOKResp appends a complete KindOK frame.
func AppendOKResp(dst []byte, id uint64) []byte {
	start := len(dst)
	dst = beginFrame(dst)
	dst = appendHeader(dst, KindOK, id)
	return endFrame(dst, start)
}

// AppendAddedResp appends a complete KindAdded frame.
func AppendAddedResp(dst []byte, id uint64, index int) []byte {
	start := len(dst)
	dst = beginFrame(dst)
	dst = appendHeader(dst, KindAdded, id)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(index))
	return endFrame(dst, start)
}

// AppendErrorResp appends a complete KindError frame. Messages longer
// than 64 KiB are truncated.
func AppendErrorResp(dst []byte, id uint64, msg string) []byte {
	if len(msg) > 1<<16-1 {
		msg = msg[:1<<16-1]
	}
	start := len(dst)
	dst = beginFrame(dst)
	dst = appendHeader(dst, KindError, id)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(msg)))
	dst = append(dst, msg...)
	return endFrame(dst, start)
}

// AppendStatsResp appends a complete KindStatsResult frame: every
// ServerStats field as one u64 in struct order (floats as bits,
// counters zero-extended).
func AppendStatsResp(dst []byte, id uint64, st *ServerStats) []byte {
	start := len(dst)
	dst = beginFrame(dst)
	dst = appendHeader(dst, KindStatsResult, id)
	dst = appendStatsWords(dst, st)
	return endFrame(dst, start)
}

// appendStatsWords appends the statsFields u64 words shared by the v1
// and v2 stats responses.
func appendStatsWords(dst []byte, st *ServerStats) []byte {
	for _, v := range [statsFields]uint64{
		uint64(st.Submitted), uint64(st.Served), uint64(st.Shed),
		uint64(st.Rejected), uint64(st.Unrouted), uint64(st.Conns),
		uint64(st.StreamSubmitted), uint64(st.StreamServed),
		uint64(st.StreamShed), uint64(st.StreamPending),
		math.Float64bits(st.Revenue), uint64(st.Clicks),
		uint64(st.Filled), uint64(st.TotalSlots), uint64(st.Epoch),
		uint64(st.Advertisers), math.Float64bits(st.BudgetSpent),
		uint64(st.BudgetExhausted), uint64(st.BudgetDenied),
		uint64(st.P50), uint64(st.P95), uint64(st.P99),
		math.Float64bits(st.WindowThroughput),
	} {
		dst = binary.LittleEndian.AppendUint64(dst, v)
	}
	return dst
}

// statsFields is the number of u64 words in a KindStatsResult body.
const statsFields = 23

// AppendStatsV2Resp appends a complete KindStatsV2Result frame: the
// v1 stats words followed by the histogram snapshot's totals and its
// nonzero (bucket index, count) pairs.
func AppendStatsV2Resp(dst []byte, id uint64, st *ServerStatsV2) []byte {
	start := len(dst)
	dst = beginFrame(dst)
	dst = appendHeader(dst, KindStatsV2Result, id)
	dst = appendStatsWords(dst, &st.ServerStats)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(st.HistCount))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(st.HistSum))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(st.HistMax))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(st.Buckets)))
	for _, b := range st.Buckets {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(b.Index))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(b.Count))
	}
	return endFrame(dst, start)
}

// ---------------------------------------------------------------------------
// Shared payload structs

// Outcome is the wire-side mirror of engine.Outcome: one auction's
// result, slices indexed by slot. Decoding reuses the slices, so a
// decoded Outcome is valid until the next decode into the same
// struct; CopyFrom deep-copies into caller-owned storage.
type Outcome struct {
	Query         int
	Revenue       float64
	AdvOf         []int
	PricePerClick []float64
	Clicked       []bool
}

// CopyFrom deep-copies src into o, reusing o's slices.
func (o *Outcome) CopyFrom(src *Outcome) {
	o.Query = src.Query
	o.Revenue = src.Revenue
	o.AdvOf = append(o.AdvOf[:0], src.AdvOf...)
	o.PricePerClick = append(o.PricePerClick[:0], src.PricePerClick...)
	o.Clicked = append(o.Clicked[:0], src.Clicked...)
}

// BatchResult aggregates a KindBatch: per-query dispositions
// (Requested == Served + Shed + Rejected), total clicks, and the
// revenue sum. The revenue is summed in completion order across
// shards, so it is reproducible only up to float addition order.
type BatchResult struct {
	Requested int
	Served    int
	Shed      int
	Rejected  int
	Clicks    int
	Revenue   float64
}

// ServerStats is the snapshot a KindStatsResult carries: the
// connection layer's admission counters (the identity Submitted ==
// Served + Shed + Rejected holds exactly once the server has
// drained), then the stream layer's view beneath it.
type ServerStats struct {
	// Connection layer.
	Submitted int64 // auction-kind requests admitted past decode
	Served    int64 // answered with a KindOutcome
	Shed      int64 // dropped by the stream Shed policy
	Rejected  int64 // refused at the connection layer (window/drain)
	Unrouted  int64 // text that matched no keyword (not in Submitted)
	Conns     int64 // currently admitted connections

	// Stream layer.
	StreamSubmitted  int64
	StreamServed     int64
	StreamShed       int64
	StreamPending    int64
	Revenue          float64
	Clicks           int64
	Filled           int64
	TotalSlots       int64
	Epoch            int64
	Advertisers      int64
	BudgetSpent      float64
	BudgetExhausted  int64
	BudgetDenied     int64
	P50              int64 // latency percentiles, ns (histogram quantiles)
	P95              int64
	P99              int64
	WindowThroughput float64
}

// HistBucket is one nonzero bucket of a wire-carried histogram
// snapshot: the obs package's bucket index and its count.
type HistBucket struct {
	Index int
	Count int64
}

// ServerStatsV2 extends ServerStats with the serving latency
// histogram: total count, sum and max (nanoseconds), and the nonzero
// buckets of the obs.Histogram bucket scheme (32 sub-buckets per
// octave; indexes below obs.NumBuckets). A client can reconstruct any
// quantile from the buckets rather than settling for the three the v1
// snapshot carries.
type ServerStatsV2 struct {
	ServerStats
	HistCount int64
	HistSum   int64
	HistMax   int64
	Buckets   []HistBucket
}

// ---------------------------------------------------------------------------
// Decoding

// reader is a bounds-checked cursor over a payload: every read either
// succeeds or sets the sticky fail flag and returns zero — decoders
// check fail once at the end, so a truncated or hostile payload can
// never index out of range.
type reader struct {
	p    []byte
	off  int
	fail bool
}

func (r *reader) u8() uint8 {
	if r.off+1 > len(r.p) {
		r.fail = true
		return 0
	}
	v := r.p[r.off]
	r.off++
	return v
}

func (r *reader) u16() uint16 {
	if r.off+2 > len(r.p) {
		r.fail = true
		return 0
	}
	v := binary.LittleEndian.Uint16(r.p[r.off:])
	r.off += 2
	return v
}

func (r *reader) u32() uint32 {
	if r.off+4 > len(r.p) {
		r.fail = true
		return 0
	}
	v := binary.LittleEndian.Uint32(r.p[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.off+8 > len(r.p) {
		r.fail = true
		return 0
	}
	v := binary.LittleEndian.Uint64(r.p[r.off:])
	r.off += 8
	return v
}

func (r *reader) bytes(n int) []byte {
	if n < 0 || r.off+n > len(r.p) {
		r.fail = true
		return nil
	}
	v := r.p[r.off : r.off+n]
	r.off += n
	return v
}

// remaining reports how many bytes the cursor has left — decoders use
// it to validate declared element counts before looping, so a hostile
// count can never drive a huge allocation.
func (r *reader) remaining() int { return len(r.p) - r.off }

func (r *reader) done() error {
	if r.fail {
		return fmt.Errorf("wire: truncated payload (%d bytes)", len(r.p))
	}
	if r.off != len(r.p) {
		return fmt.Errorf("wire: %d trailing bytes after payload", len(r.p)-r.off)
	}
	return nil
}

// Request is a decoded request payload. Decode reuses Text, Qs, and
// the Adv slices, so a Request is valid until the next Decode into it.
type Request struct {
	Kind Kind
	ID   uint64
	Q    int                 // KindAuction, KindRemove
	Text []byte              // KindText
	Qs   []int               // KindBatch
	Adv  workload.Advertiser // KindAdd
}

// Decode parses one request payload into req. Any malformed input —
// truncated, trailing bytes, counts that overrun the payload, or a
// response/unknown kind — returns an error and never panics.
func (req *Request) Decode(p []byte) error {
	r := reader{p: p}
	req.Kind = Kind(r.u8())
	req.ID = r.u64()
	if r.fail {
		return fmt.Errorf("wire: payload too short for request header: %d bytes", len(p))
	}
	switch req.Kind {
	case KindAuction, KindRemove:
		req.Q = int(int32(r.u32()))
	case KindText:
		n := int(r.u16())
		req.Text = append(req.Text[:0], r.bytes(n)...)
	case KindBatch:
		n := int(r.u32())
		if n > r.remaining()/4 {
			return fmt.Errorf("wire: batch count %d overruns payload", n)
		}
		req.Qs = req.Qs[:0]
		for i := 0; i < n; i++ {
			req.Qs = append(req.Qs, int(int32(r.u32())))
		}
	case KindStats, KindStatsV2, KindReset, KindDrain:
		// No body.
	case KindAdd:
		a := &req.Adv
		a.Target = int(int32(r.u32()))
		a.Budget = math.Float64frombits(r.u64())
		a.Heavy = r.u8() != 0
		k := int(r.u32())
		if k > r.remaining()/8 { // value + bid arrays, 4 bytes each
			return fmt.Errorf("wire: advertiser keyword count %d overruns payload", k)
		}
		a.Value = a.Value[:0]
		for i := 0; i < k; i++ {
			a.Value = append(a.Value, int(int32(r.u32())))
		}
		a.InitialBid = a.InitialBid[:0]
		for i := 0; i < k; i++ {
			a.InitialBid = append(a.InitialBid, int(int32(r.u32())))
		}
		sl := int(r.u32())
		if sl > r.remaining()/8 {
			return fmt.Errorf("wire: advertiser slot count %d overruns payload", sl)
		}
		a.ClickProb = a.ClickProb[:0]
		for i := 0; i < sl; i++ {
			a.ClickProb = append(a.ClickProb, math.Float64frombits(r.u64()))
		}
	default:
		return fmt.Errorf("wire: unknown request kind 0x%02x", uint8(req.Kind))
	}
	return r.done()
}

// Response is a decoded response payload. Decode reuses the Out
// slices, so a Response is valid until the next Decode into it. Msg
// (KindError) is freshly allocated — the error path is not a hot
// path.
type Response struct {
	Kind    Kind
	ID      uint64
	Reason  RejectReason  // KindRejected
	Out     Outcome       // KindOutcome
	Batch   BatchResult   // KindBatchResult
	Stats   ServerStats   // KindStatsResult
	StatsV2 ServerStatsV2 // KindStatsV2Result (Buckets reused)
	Index   int           // KindAdded
	Msg     string        // KindError
}

// readStatsWords decodes the statsFields u64 words shared by the v1
// and v2 stats responses.
func readStatsWords(r *reader, st *ServerStats) {
	st.Submitted = int64(r.u64())
	st.Served = int64(r.u64())
	st.Shed = int64(r.u64())
	st.Rejected = int64(r.u64())
	st.Unrouted = int64(r.u64())
	st.Conns = int64(r.u64())
	st.StreamSubmitted = int64(r.u64())
	st.StreamServed = int64(r.u64())
	st.StreamShed = int64(r.u64())
	st.StreamPending = int64(r.u64())
	st.Revenue = math.Float64frombits(r.u64())
	st.Clicks = int64(r.u64())
	st.Filled = int64(r.u64())
	st.TotalSlots = int64(r.u64())
	st.Epoch = int64(r.u64())
	st.Advertisers = int64(r.u64())
	st.BudgetSpent = math.Float64frombits(r.u64())
	st.BudgetExhausted = int64(r.u64())
	st.BudgetDenied = int64(r.u64())
	st.P50 = int64(r.u64())
	st.P95 = int64(r.u64())
	st.P99 = int64(r.u64())
	st.WindowThroughput = math.Float64frombits(r.u64())
}

// Decode parses one response payload into resp, with the same
// never-panic contract as Request.Decode.
func (resp *Response) Decode(p []byte) error {
	r := reader{p: p}
	resp.Kind = Kind(r.u8())
	resp.ID = r.u64()
	if r.fail {
		return fmt.Errorf("wire: payload too short for response header: %d bytes", len(p))
	}
	switch resp.Kind {
	case KindOutcome:
		o := &resp.Out
		o.Query = int(int32(r.u32()))
		o.Revenue = math.Float64frombits(r.u64())
		n := int(r.u16())
		if n > r.remaining()/13 { // 4 + 8 + 1 bytes per slot
			return fmt.Errorf("wire: outcome slot count %d overruns payload", n)
		}
		o.AdvOf = o.AdvOf[:0]
		o.PricePerClick = o.PricePerClick[:0]
		o.Clicked = o.Clicked[:0]
		for i := 0; i < n; i++ {
			o.AdvOf = append(o.AdvOf, int(int32(r.u32())))
			o.PricePerClick = append(o.PricePerClick, math.Float64frombits(r.u64()))
			o.Clicked = append(o.Clicked, r.u8() != 0)
		}
	case KindShed, KindOK, KindUnrouted:
		// No body.
	case KindRejected:
		resp.Reason = RejectReason(r.u8())
	case KindBatchResult:
		b := &resp.Batch
		b.Requested = int(int32(r.u32()))
		b.Served = int(int32(r.u32()))
		b.Shed = int(int32(r.u32()))
		b.Rejected = int(int32(r.u32()))
		b.Clicks = int(int32(r.u32()))
		b.Revenue = math.Float64frombits(r.u64())
	case KindStatsResult:
		readStatsWords(&r, &resp.Stats)
	case KindStatsV2Result:
		st := &resp.StatsV2
		readStatsWords(&r, &st.ServerStats)
		st.HistCount = int64(r.u64())
		st.HistSum = int64(r.u64())
		st.HistMax = int64(r.u64())
		n := int(r.u32())
		if n > r.remaining()/12 { // 4 + 8 bytes per bucket
			return fmt.Errorf("wire: histogram bucket count %d overruns payload", n)
		}
		st.Buckets = st.Buckets[:0]
		for i := 0; i < n; i++ {
			idx := int(int32(r.u32()))
			cnt := int64(r.u64())
			if idx < 0 || idx >= obs.NumBuckets {
				return fmt.Errorf("wire: histogram bucket index %d out of range [0,%d)", idx, obs.NumBuckets)
			}
			st.Buckets = append(st.Buckets, HistBucket{Index: idx, Count: cnt})
		}
	case KindAdded:
		resp.Index = int(int32(r.u32()))
	case KindError:
		n := int(r.u16())
		resp.Msg = string(r.bytes(n))
	default:
		return fmt.Errorf("wire: unknown response kind 0x%02x", uint8(resp.Kind))
	}
	return r.done()
}
