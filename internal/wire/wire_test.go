package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/workload"
)

// frames builds a stream of complete frames for reader tests.
func frames(bufs ...[]byte) []byte {
	var all []byte
	for _, b := range bufs {
		all = append(all, b...)
	}
	return all
}

// TestRequestRoundTrip: every request kind encodes to one frame and
// decodes back to the same values through a reused Request.
func TestRequestRoundTrip(t *testing.T) {
	adv := workload.Advertiser{
		Value:      []int{3, 0, 7},
		InitialBid: []int{2, 0, 5},
		ClickProb:  []float64{0.75, 0.25},
		Target:     2,
		Budget:     123.5,
		Heavy:      true,
	}
	stream := frames(
		AppendAuctionReq(nil, 1, 42),
		AppendTextReq(nil, 2, "cheap flights"),
		AppendBatchReq(nil, 3, []int{5, 6, 7, 8}),
		AppendStatsReq(nil, 4),
		AppendResetReq(nil, 5),
		AppendDrainReq(nil, 6),
		AppendAddReq(nil, 7, &adv),
		AppendRemoveReq(nil, 8, 9),
	)
	fr := NewFrameReader(bytes.NewReader(stream), 0)
	var req Request
	next := func() *Request {
		t.Helper()
		p, err := fr.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if err := req.Decode(p); err != nil {
			t.Fatalf("Decode: %v", err)
		}
		return &req
	}

	if r := next(); r.Kind != KindAuction || r.ID != 1 || r.Q != 42 {
		t.Fatalf("auction: %+v", r)
	}
	if r := next(); r.Kind != KindText || r.ID != 2 || string(r.Text) != "cheap flights" {
		t.Fatalf("text: %+v", r)
	}
	if r := next(); r.Kind != KindBatch || r.ID != 3 || len(r.Qs) != 4 || r.Qs[0] != 5 || r.Qs[3] != 8 {
		t.Fatalf("batch: %+v", r)
	}
	if r := next(); r.Kind != KindStats || r.ID != 4 {
		t.Fatalf("stats: %+v", r)
	}
	if r := next(); r.Kind != KindReset || r.ID != 5 {
		t.Fatalf("reset: %+v", r)
	}
	if r := next(); r.Kind != KindDrain || r.ID != 6 {
		t.Fatalf("drain: %+v", r)
	}
	r := next()
	if r.Kind != KindAdd || r.ID != 7 {
		t.Fatalf("add: %+v", r)
	}
	a := &r.Adv
	if a.Target != adv.Target || a.Budget != adv.Budget || a.Heavy != adv.Heavy {
		t.Fatalf("add scalar fields: %+v", a)
	}
	for i := range adv.Value {
		if a.Value[i] != adv.Value[i] || a.InitialBid[i] != adv.InitialBid[i] {
			t.Fatalf("add arrays at %d: %+v", i, a)
		}
	}
	for i := range adv.ClickProb {
		if a.ClickProb[i] != adv.ClickProb[i] {
			t.Fatalf("add clickprob at %d: %+v", i, a)
		}
	}
	if r := next(); r.Kind != KindRemove || r.ID != 8 || r.Q != 9 {
		t.Fatalf("remove: %+v", r)
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("want clean EOF at stream end, got %v", err)
	}
}

// TestResponseRoundTrip: every response kind round-trips bit-exactly,
// including the Float64bits encoding of revenue and prices.
func TestResponseRoundTrip(t *testing.T) {
	out := &engine.Outcome{
		Query:         11,
		AdvOf:         []int{4, -1, 2},
		PricePerClick: []float64{1.25, 0, math.Nextafter(3, 4)},
		Clicked:       []bool{true, false, true},
		Revenue:       4.25,
	}
	br := &BatchResult{Requested: 10, Served: 7, Shed: 2, Rejected: 1, Clicks: 5, Revenue: 99.5}
	st := &ServerStats{
		Submitted: 100, Served: 90, Shed: 6, Rejected: 4, Unrouted: 3, Conns: 2,
		StreamSubmitted: 96, StreamServed: 90, StreamShed: 6, StreamPending: 0,
		Revenue: 1234.5, Clicks: 77, Filled: 300, TotalSlots: 400,
		Epoch: 5, Advertisers: 40, BudgetSpent: 17.25, BudgetExhausted: 2,
		BudgetDenied: 9, P50: 1000, P95: 5000, P99: 9000, WindowThroughput: 1e6,
	}
	stream := frames(
		AppendOutcomeResp(nil, 1, out),
		AppendShedResp(nil, 2),
		AppendRejectedResp(nil, 3, ReasonDraining),
		AppendBatchResp(nil, 4, br),
		AppendStatsResp(nil, 5, st),
		AppendOKResp(nil, 6),
		AppendAddedResp(nil, 7, 41),
		AppendErrorResp(nil, 8, "boom"),
		AppendUnroutedResp(nil, 9),
	)
	fr := NewFrameReader(bytes.NewReader(stream), 0)
	var resp Response
	next := func() *Response {
		t.Helper()
		p, err := fr.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if err := resp.Decode(p); err != nil {
			t.Fatalf("Decode: %v", err)
		}
		return &resp
	}

	r := next()
	if r.Kind != KindOutcome || r.ID != 1 {
		t.Fatalf("outcome: %+v", r)
	}
	if r.Out.Query != out.Query || math.Float64bits(r.Out.Revenue) != math.Float64bits(out.Revenue) {
		t.Fatalf("outcome scalars: %+v", r.Out)
	}
	for j := range out.AdvOf {
		if r.Out.AdvOf[j] != out.AdvOf[j] ||
			math.Float64bits(r.Out.PricePerClick[j]) != math.Float64bits(out.PricePerClick[j]) ||
			r.Out.Clicked[j] != out.Clicked[j] {
			t.Fatalf("outcome slot %d: %+v", j, r.Out)
		}
	}
	if r := next(); r.Kind != KindShed || r.ID != 2 {
		t.Fatalf("shed: %+v", r)
	}
	if r := next(); r.Kind != KindRejected || r.ID != 3 || r.Reason != ReasonDraining {
		t.Fatalf("rejected: %+v", r)
	}
	if r := next(); r.Kind != KindBatchResult || r.ID != 4 || r.Batch != *br {
		t.Fatalf("batch: %+v", r)
	}
	if r := next(); r.Kind != KindStatsResult || r.ID != 5 || r.Stats != *st {
		t.Fatalf("stats: %+v", r)
	}
	if r := next(); r.Kind != KindOK || r.ID != 6 {
		t.Fatalf("ok: %+v", r)
	}
	if r := next(); r.Kind != KindAdded || r.ID != 7 || r.Index != 41 {
		t.Fatalf("added: %+v", r)
	}
	if r := next(); r.Kind != KindError || r.ID != 8 || r.Msg != "boom" {
		t.Fatalf("error: %+v", r)
	}
	if r := next(); r.Kind != KindUnrouted || r.ID != 9 {
		t.Fatalf("unrouted: %+v", r)
	}
}

// TestOutcomeCopyFrom: CopyFrom deep-copies, so mutating the source
// afterwards leaves the copy untouched.
func TestOutcomeCopyFrom(t *testing.T) {
	src := Outcome{Query: 3, Revenue: 1.5, AdvOf: []int{1, 2},
		PricePerClick: []float64{0.5, 0.25}, Clicked: []bool{true, false}}
	var dst Outcome
	dst.CopyFrom(&src)
	src.AdvOf[0] = 99
	src.PricePerClick[0] = 99
	src.Clicked[0] = false
	if dst.AdvOf[0] != 1 || dst.PricePerClick[0] != 0.5 || !dst.Clicked[0] {
		t.Fatalf("CopyFrom aliases the source: %+v", dst)
	}
}

// TestFrameCorruption: torn headers, torn payloads, oversized length
// fields, checksum mismatches, and trailing garbage inside a payload
// all error with a reason — none panic, and none are silently
// accepted.
func TestFrameCorruption(t *testing.T) {
	good := AppendAuctionReq(nil, 7, 3)
	cases := []struct {
		name string
		data []byte
		max  int
		want string
	}{
		{"torn header", good[:5], 0, "torn frame header"},
		{"torn payload", good[:len(good)-2], 0, "torn frame payload"},
		{"oversized length", func() []byte {
			b := append([]byte(nil), good...)
			binary.LittleEndian.PutUint32(b, 1<<30)
			return b
		}(), 0, "exceeds limit"},
		{"over reader limit", good, 4, "exceeds limit"},
		{"bad crc", func() []byte {
			b := append([]byte(nil), good...)
			b[len(b)-1] ^= 0x40
			return b
		}(), 0, "checksum mismatch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fr := NewFrameReader(bytes.NewReader(tc.data), tc.max)
			_, err := fr.Next()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

// TestPayloadCorruption: structurally valid frames whose payloads are
// malformed decode to errors, never panics — truncated bodies,
// element counts that overrun the payload, trailing bytes, and
// direction confusion (decoding a response as a request).
func TestPayloadCorruption(t *testing.T) {
	reframe := func(payload []byte) []byte {
		b := beginFrame(nil)
		b = append(b, payload...)
		return endFrame(b, 0)
	}
	read := func(t *testing.T, data []byte) []byte {
		t.Helper()
		p, err := NewFrameReader(bytes.NewReader(data), 0).Next()
		if err != nil {
			t.Fatalf("framing should be valid here: %v", err)
		}
		return p
	}

	t.Run("truncated body", func(t *testing.T) {
		full := read(t, AppendAuctionReq(nil, 1, 5))
		var req Request
		if err := req.Decode(full[:len(full)-2]); err == nil {
			t.Fatal("truncated auction body decoded without error")
		}
	})
	t.Run("batch count overrun", func(t *testing.T) {
		p := []byte{byte(KindBatch)}
		p = binary.LittleEndian.AppendUint64(p, 1)
		p = binary.LittleEndian.AppendUint32(p, 1<<31-1) // count ≫ payload
		var req Request
		if err := req.Decode(read(t, reframe(p))); err == nil ||
			!strings.Contains(err.Error(), "overruns") {
			t.Fatalf("want overrun error, got %v", err)
		}
	})
	t.Run("outcome slot overrun", func(t *testing.T) {
		p := []byte{byte(KindOutcome)}
		p = binary.LittleEndian.AppendUint64(p, 1)
		p = binary.LittleEndian.AppendUint32(p, 0)
		p = binary.LittleEndian.AppendUint64(p, 0)
		p = binary.LittleEndian.AppendUint16(p, 1<<16-1)
		var resp Response
		if err := resp.Decode(read(t, reframe(p))); err == nil ||
			!strings.Contains(err.Error(), "overruns") {
			t.Fatalf("want overrun error, got %v", err)
		}
	})
	t.Run("trailing bytes", func(t *testing.T) {
		full := read(t, AppendStatsReq(nil, 2))
		var req Request
		if err := req.Decode(append(append([]byte(nil), full...), 0xAA)); err == nil ||
			!strings.Contains(err.Error(), "trailing") {
			t.Fatalf("want trailing-bytes error, got %v", err)
		}
	})
	t.Run("response as request", func(t *testing.T) {
		full := read(t, AppendShedResp(nil, 3))
		var req Request
		if err := req.Decode(full); err == nil ||
			!strings.Contains(err.Error(), "unknown request kind") {
			t.Fatalf("want unknown-kind error, got %v", err)
		}
	})
	t.Run("empty payload", func(t *testing.T) {
		var req Request
		if err := req.Decode(nil); err == nil {
			t.Fatal("empty request payload decoded without error")
		}
		var resp Response
		if err := resp.Decode(nil); err == nil {
			t.Fatal("empty response payload decoded without error")
		}
	})
}

// TestDecodeReuse: repeated decodes into the same structs reuse the
// grown slices — after a warmup decode of the largest shape, further
// decodes of same-or-smaller payloads allocate nothing.
func TestDecodeReuse(t *testing.T) {
	out := &engine.Outcome{
		Query:         1,
		AdvOf:         []int{1, 2, 3, 4},
		PricePerClick: []float64{1, 2, 3, 4},
		Clicked:       []bool{true, true, false, false},
		Revenue:       10,
	}
	p := AppendOutcomeResp(nil, 9, out)[frameHeader:]
	var resp Response
	if err := resp.Decode(p); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := resp.Decode(p); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm response decode allocates %.1f objects/op, want 0", allocs)
	}
}
