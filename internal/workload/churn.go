package workload

import "fmt"

// Advertiser is one bidder's row of an Instance, detached from any
// index — the unit of live population churn. The open-world premise of
// the paper (queries and budgets arrive over time, Feldman &
// Muthukrishnan's framing) needs advertisers that can join and leave a
// running market; WithAdvertiser and WithoutAdvertiser derive the
// post-churn population an engine is rebuilt over.
type Advertiser struct {
	// Value[q] is the click value for keyword q (doubles as the max
	// bid); must have exactly Keywords entries.
	Value []int
	// InitialBid[q] is the starting bid; nil derives Value/2, the
	// Generate convention.
	InitialBid []int
	// ClickProb[j] is the click probability in slot j; must have
	// exactly Slots entries.
	ClickProb []float64
	// Target is the target spending rate (≥ 1).
	Target int
	// Budget is the daily budget cap the cross-keyword budget
	// subsystem enforces; 0 means unlimited.
	Budget float64
	// Heavy marks a Section III-F heavyweight.
	Heavy bool
}

// cloneRows deep-copies the per-advertiser rows of inst into a new
// instance with capacity for extra more rows. Churn always copies:
// markets built over the old instance keep reading it concurrently
// while the new population is being assembled, so rows are never
// shared between generations.
func (inst *Instance) cloneRows(extra int) *Instance {
	out := &Instance{
		N:          inst.N,
		Slots:      inst.Slots,
		Keywords:   inst.Keywords,
		Value:      make([][]int, inst.N, inst.N+extra),
		Target:     make([]int, inst.N, inst.N+extra),
		InitialBid: make([][]int, inst.N, inst.N+extra),
		ClickProb:  make([][]float64, inst.N, inst.N+extra),
		Shadow:     inst.Shadow,
	}
	copy(out.Target, inst.Target)
	for i := 0; i < inst.N; i++ {
		out.Value[i] = append([]int(nil), inst.Value[i]...)
		out.InitialBid[i] = append([]int(nil), inst.InitialBid[i]...)
		out.ClickProb[i] = append([]float64(nil), inst.ClickProb[i]...)
	}
	if inst.Heavy != nil {
		out.Heavy = make([]bool, inst.N, inst.N+extra)
		copy(out.Heavy, inst.Heavy)
	}
	if inst.Budget != nil {
		out.Budget = make([]float64, inst.N, inst.N+extra)
		copy(out.Budget, inst.Budget)
	}
	return out
}

// WithAdvertiser returns a new instance extending inst with a as its
// last advertiser (index N of the result). inst is not modified; rows
// are deep-copied so the two generations share no state.
func (inst *Instance) WithAdvertiser(a Advertiser) (*Instance, error) {
	if len(a.Value) != inst.Keywords {
		return nil, fmt.Errorf("workload: advertiser has %d keyword values, instance has %d keywords", len(a.Value), inst.Keywords)
	}
	if len(a.ClickProb) != inst.Slots {
		return nil, fmt.Errorf("workload: advertiser has %d slot probabilities, instance has %d slots", len(a.ClickProb), inst.Slots)
	}
	if a.InitialBid != nil && len(a.InitialBid) != inst.Keywords {
		return nil, fmt.Errorf("workload: advertiser has %d initial bids, instance has %d keywords", len(a.InitialBid), inst.Keywords)
	}
	if a.Target < 1 {
		return nil, fmt.Errorf("workload: advertiser target %d, want >= 1", a.Target)
	}
	out := inst.cloneRows(1)
	out.N++
	out.Value = append(out.Value, append([]int(nil), a.Value...))
	bid := a.InitialBid
	if bid == nil {
		bid = make([]int, inst.Keywords)
		for q, v := range a.Value {
			bid[q] = v / 2
		}
	}
	out.InitialBid = append(out.InitialBid, append([]int(nil), bid...))
	out.ClickProb = append(out.ClickProb, append([]float64(nil), a.ClickProb...))
	out.Target = append(out.Target, a.Target)
	if out.Heavy == nil && a.Heavy {
		out.Heavy = make([]bool, inst.N, inst.N+1)
	}
	if out.Heavy != nil {
		out.Heavy = append(out.Heavy, a.Heavy)
	}
	if out.Budget == nil && a.Budget > 0 {
		out.Budget = make([]float64, inst.N, inst.N+1)
	}
	if out.Budget != nil {
		out.Budget = append(out.Budget, a.Budget)
	}
	return out, nil
}

// WithoutAdvertiser returns a new instance with advertiser i removed;
// advertisers above i shift down one index. inst is not modified.
func (inst *Instance) WithoutAdvertiser(i int) (*Instance, error) {
	if i < 0 || i >= inst.N {
		return nil, fmt.Errorf("workload: remove advertiser %d out of range [0,%d)", i, inst.N)
	}
	if inst.N == 1 {
		return nil, fmt.Errorf("workload: cannot remove the last advertiser")
	}
	out := inst.cloneRows(0)
	out.N--
	out.Value = append(out.Value[:i], out.Value[i+1:]...)
	out.InitialBid = append(out.InitialBid[:i], out.InitialBid[i+1:]...)
	out.ClickProb = append(out.ClickProb[:i], out.ClickProb[i+1:]...)
	out.Target = append(out.Target[:i], out.Target[i+1:]...)
	if out.Heavy != nil {
		out.Heavy = append(out.Heavy[:i], out.Heavy[i+1:]...)
	}
	if out.Budget != nil {
		out.Budget = append(out.Budget[:i], out.Budget[i+1:]...)
	}
	return out, nil
}
