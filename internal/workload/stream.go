package workload

import (
	"math/rand"
	"strings"
	"time"
)

// This file generates open-world query streams: instead of a closed
// batch of keyword indices, a Stream emits timestamped arrival events
// — Poisson or bursty interarrivals, optional Zipf hot-keyword skew,
// and scripted advertiser churn — the workload the streaming server
// (internal/stream) is built to absorb. The generator is fully
// deterministic given its rng: arrival offsets are computed, not
// measured, so tests and benchmarks can replay identical open-world
// traffic.

// StreamConfig shapes an open-world query stream.
type StreamConfig struct {
	// Queries is the number of query events to emit (required > 0).
	Queries int
	// QPS is the mean arrival rate in queries per second; 0 defaults
	// to 1000.
	QPS float64
	// ZipfS, when > 1, skews keyword popularity by a Zipf law with
	// that exponent (keyword 0 hottest); otherwise keywords are
	// uniform, the Section V default.
	ZipfS float64
	// BurstFactor, when > 1, turns the arrival process into a
	// two-state modulated Poisson process: the stream alternates
	// between a calm regime at QPS and bursts at QPS·BurstFactor.
	BurstFactor float64
	// BurstDwell is the mean number of queries between regime
	// switches (geometric dwell); 0 defaults to 64.
	BurstDwell int
	// Churn is the scripted population-churn timeline, sorted by
	// After; events are emitted between query events.
	Churn []ChurnEvent
	// TextTokens, when > 0, switches query events to free-text mode
	// for the broad-match serving path: each query event carries a
	// query of 1…TextTokens tokens in Event.Text, drawn from the
	// bigram catalog's token vocabulary t0…t<keywords> with the same
	// ZipfS skew the keyword draw would use, and Event.Keyword is −1
	// (routing happens on the serving side, not in the generator).
	TextTokens int
}

// ChurnEvent is one scripted population change: after After query
// events, add Add (when non-nil) or remove advertiser Remove.
type ChurnEvent struct {
	After  int
	Add    *Advertiser
	Remove int
}

// Event is one emission of a Stream: a keyword query (Keyword >= 0)
// arriving At nanoseconds after the stream's start, a free-text query
// (Text != "", Keyword == -1; TextTokens mode), or a churn event
// (Churn non-nil, Keyword == -1) due at that same offset.
type Event struct {
	At      time.Duration
	Keyword int
	Text    string
	Churn   *ChurnEvent
}

// Stream is a deterministic open-world event source; create with
// NewStream and drain with Next.
type Stream struct {
	rng      *rand.Rand
	cfg      StreamConfig
	zipf     *rand.Zipf
	tzipf    *rand.Zipf // token skew, TextTokens mode only
	tbuf     strings.Builder
	keywords int
	now      time.Duration
	emitted  int // query events emitted so far
	churnAt  int // next cfg.Churn index
	burst    bool
}

// NewStream builds a stream of cfg.Queries arrivals over inst's
// keyword catalog, drawing all randomness from rng.
func NewStream(inst *Instance, rng *rand.Rand, cfg StreamConfig) *Stream {
	if cfg.QPS <= 0 {
		cfg.QPS = 1000
	}
	if cfg.BurstDwell <= 0 {
		cfg.BurstDwell = 64
	}
	s := &Stream{rng: rng, cfg: cfg, keywords: inst.Keywords}
	if cfg.TextTokens > 0 {
		// Free-text mode draws tokens (vocabulary t0…t<keywords>, one
		// larger than the catalog) instead of keyword indices; the
		// keyword Zipf is never built, so non-text streams' draw
		// sequences are untouched.
		if cfg.ZipfS > 1 && inst.Keywords > 0 {
			s.tzipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(inst.Keywords))
		}
		return s
	}
	if cfg.ZipfS > 1 && inst.Keywords > 1 {
		s.zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(inst.Keywords-1))
	}
	return s
}

// Next returns the next event, or ok == false when the stream is
// exhausted (all queries emitted and all churn events delivered).
func (s *Stream) Next() (ev Event, ok bool) {
	// A churn event scheduled beyond the last query (After >
	// cfg.Queries) is still delivered, at end of stream: exhaustion
	// means every query AND every churn event emitted.
	if s.churnAt < len(s.cfg.Churn) &&
		(s.cfg.Churn[s.churnAt].After <= s.emitted || s.emitted >= s.cfg.Queries) {
		c := &s.cfg.Churn[s.churnAt]
		s.churnAt++
		return Event{At: s.now, Keyword: -1, Churn: c}, true
	}
	if s.emitted >= s.cfg.Queries {
		return Event{}, false
	}
	rate := s.cfg.QPS
	if s.cfg.BurstFactor > 1 {
		// Geometric dwell: each arrival flips the regime with
		// probability 1/BurstDwell, giving exponential-ish on/off
		// periods without tracking wall time.
		if s.rng.Intn(s.cfg.BurstDwell) == 0 {
			s.burst = !s.burst
		}
		if s.burst {
			rate *= s.cfg.BurstFactor
		}
	}
	s.now += time.Duration(s.rng.ExpFloat64() / rate * 1e9)
	if s.cfg.TextTokens > 0 {
		s.emitted++
		text := textQuery(s.rng, s.tzipf, s.keywords, s.cfg.TextTokens, &s.tbuf)
		return Event{At: s.now, Keyword: -1, Text: text}, true
	}
	kw := 0
	if s.zipf != nil {
		kw = int(s.zipf.Uint64())
	} else if s.keywords > 1 {
		kw = s.rng.Intn(s.keywords)
	}
	s.emitted++
	return Event{At: s.now, Keyword: kw}, true
}

// ScriptChurn draws a churn timeline of n events spread evenly over a
// stream of totalQueries: odd events admit a fresh RandomAdvertiser,
// even events evict a uniformly chosen index, with the running
// population size tracked so every removal index is valid at its
// scheduled time. Into a budgeted population (inst.Budget non-nil)
// newcomers arrive with a RandomBudget scaled to the stream length;
// unbudgeted populations draw exactly the pre-budget sequence.
func ScriptChurn(rng *rand.Rand, inst *Instance, n, totalQueries int) []ChurnEvent {
	pop := inst.N
	events := make([]ChurnEvent, 0, n)
	for e := 1; e <= n; e++ {
		after := e * totalQueries / (n + 1)
		if e%2 == 1 || pop <= 1 {
			a := RandomAdvertiser(rng, inst.Slots, inst.Keywords)
			if inst.Budget != nil {
				a.Budget = RandomBudget(rng, a.Target, float64(totalQueries))
			}
			events = append(events, ChurnEvent{After: after, Add: &a})
			pop++
		} else {
			events = append(events, ChurnEvent{After: after, Remove: rng.Intn(pop)})
			pop--
		}
	}
	return events
}
