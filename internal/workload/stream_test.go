package workload

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// TestRandomAdvertiserMatchesGenerate: Generate is now a loop over
// RandomAdvertiser, so drawing n advertisers by hand from an
// identically seeded rng must reproduce the instance byte for byte —
// the property that makes churn admissions distributionally identical
// to the founding population.
func TestRandomAdvertiserMatchesGenerate(t *testing.T) {
	inst := Generate(rand.New(rand.NewSource(7)), 40, 5, 8)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < inst.N; i++ {
		a := RandomAdvertiser(rng, 5, 8)
		if !reflect.DeepEqual(a.Value, inst.Value[i]) ||
			!reflect.DeepEqual(a.InitialBid, inst.InitialBid[i]) ||
			!reflect.DeepEqual(a.ClickProb, inst.ClickProb[i]) ||
			a.Target != inst.Target[i] {
			t.Fatalf("advertiser %d: RandomAdvertiser draw diverged from Generate", i)
		}
	}
}

func TestWithAdvertiser(t *testing.T) {
	inst := Generate(rand.New(rand.NewSource(8)), 10, 4, 6)
	a := RandomAdvertiser(rand.New(rand.NewSource(9)), 4, 6)
	next, err := inst.WithAdvertiser(a)
	if err != nil {
		t.Fatal(err)
	}
	if next.N != 11 || inst.N != 10 {
		t.Fatalf("N: next=%d inst=%d", next.N, inst.N)
	}
	if !reflect.DeepEqual(next.Value[10], a.Value) || next.Target[10] != a.Target {
		t.Fatal("appended row does not match the advertiser")
	}
	// Deep copy: mutating the new generation must not touch the old.
	next.Value[0][0] = 999
	if inst.Value[0][0] == 999 {
		t.Fatal("WithAdvertiser shared rows with the source instance")
	}
	// Derived initial bid.
	b := a
	b.InitialBid = nil
	next2, err := inst.WithAdvertiser(b)
	if err != nil {
		t.Fatal(err)
	}
	for q, v := range b.Value {
		if next2.InitialBid[10][q] != v/2 {
			t.Fatalf("derived initial bid[%d] = %d, want %d", q, next2.InitialBid[10][q], v/2)
		}
	}
	// Shape validation.
	bad := a
	bad.Value = bad.Value[:3]
	if _, err := inst.WithAdvertiser(bad); err == nil {
		t.Fatal("short Value row accepted")
	}
	bad = a
	bad.ClickProb = append([]float64(nil), 0.5)
	if _, err := inst.WithAdvertiser(bad); err == nil {
		t.Fatal("short ClickProb row accepted")
	}
	bad = a
	bad.Target = 0
	if _, err := inst.WithAdvertiser(bad); err == nil {
		t.Fatal("zero target accepted")
	}
}

func TestWithAdvertiserHeavyOverlay(t *testing.T) {
	inst := GenerateHeavy(rand.New(rand.NewSource(10)), 6, 3, 4, 0.5, 0.3)
	a := RandomAdvertiser(rand.New(rand.NewSource(11)), 3, 4)
	a.Heavy = true
	next, err := inst.WithAdvertiser(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(next.Heavy) != 7 || !next.Heavy[6] {
		t.Fatalf("heavy overlay not extended: %v", next.Heavy)
	}
	// A heavyweight joining a flat instance materializes the overlay.
	flat := Generate(rand.New(rand.NewSource(12)), 5, 3, 4)
	next2, err := flat.WithAdvertiser(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(next2.Heavy) != 6 || !next2.Heavy[5] || next2.Heavy[0] {
		t.Fatalf("flat instance heavy overlay: %v", next2.Heavy)
	}
}

func TestWithoutAdvertiser(t *testing.T) {
	inst := Generate(rand.New(rand.NewSource(13)), 8, 4, 5)
	next, err := inst.WithoutAdvertiser(3)
	if err != nil {
		t.Fatal(err)
	}
	if next.N != 7 || inst.N != 8 {
		t.Fatalf("N: next=%d inst=%d", next.N, inst.N)
	}
	// Index 3 gone; higher indices shifted down.
	for i := 0; i < 3; i++ {
		if !reflect.DeepEqual(next.Value[i], inst.Value[i]) {
			t.Fatalf("row %d changed", i)
		}
	}
	for i := 4; i < 8; i++ {
		if !reflect.DeepEqual(next.Value[i-1], inst.Value[i]) {
			t.Fatalf("row %d did not shift down", i)
		}
	}
	if _, err := inst.WithoutAdvertiser(8); err == nil {
		t.Fatal("out-of-range removal accepted")
	}
	if _, err := inst.WithoutAdvertiser(-1); err == nil {
		t.Fatal("negative removal accepted")
	}
	one := Generate(rand.New(rand.NewSource(14)), 1, 4, 5)
	if _, err := one.WithoutAdvertiser(0); err == nil {
		t.Fatal("removing the last advertiser accepted")
	}
}

// TestStreamDeterministic: two identically seeded streams emit the
// same event sequence — the property replayable open-world tests and
// benchmarks rest on.
func TestStreamDeterministic(t *testing.T) {
	inst := Generate(rand.New(rand.NewSource(15)), 10, 4, 6)
	cfg := StreamConfig{Queries: 500, QPS: 5000, ZipfS: 1.3, BurstFactor: 4, BurstDwell: 32}
	a := NewStream(inst, rand.New(rand.NewSource(16)), cfg)
	b := NewStream(inst, rand.New(rand.NewSource(16)), cfg)
	for {
		ea, oka := a.Next()
		eb, okb := b.Next()
		if oka != okb || ea != eb {
			t.Fatalf("streams diverged: %+v/%v vs %+v/%v", ea, oka, eb, okb)
		}
		if !oka {
			return
		}
	}
}

// TestStreamArrivalRate: Poisson interarrivals at QPS λ must span
// close to Queries/λ seconds, and arrival offsets must be monotone.
func TestStreamArrivalRate(t *testing.T) {
	inst := Generate(rand.New(rand.NewSource(17)), 10, 4, 6)
	const n, qps = 20000, 2000.0
	s := NewStream(inst, rand.New(rand.NewSource(18)), StreamConfig{Queries: n, QPS: qps})
	var last time.Duration
	count := 0
	for {
		ev, ok := s.Next()
		if !ok {
			break
		}
		if ev.At < last {
			t.Fatalf("arrival time went backwards: %v after %v", ev.At, last)
		}
		last = ev.At
		count++
		if ev.Keyword < 0 || ev.Keyword >= inst.Keywords {
			t.Fatalf("keyword %d out of range", ev.Keyword)
		}
	}
	if count != n {
		t.Fatalf("emitted %d queries, want %d", count, n)
	}
	want := float64(n) / qps
	got := last.Seconds()
	if got < 0.9*want || got > 1.1*want {
		t.Fatalf("stream spans %.2fs, want ~%.2fs at %g qps", got, want, qps)
	}
}

// TestStreamBurstFactor: a bursty stream at the same base QPS
// finishes sooner (its bursts run faster than the base rate and
// nothing runs slower), and keeps emitting exactly Queries events.
func TestStreamBurstFactor(t *testing.T) {
	inst := Generate(rand.New(rand.NewSource(19)), 10, 4, 6)
	const n = 20000
	span := func(factor float64) time.Duration {
		s := NewStream(inst, rand.New(rand.NewSource(20)), StreamConfig{Queries: n, QPS: 1000, BurstFactor: factor})
		var last time.Duration
		for {
			ev, ok := s.Next()
			if !ok {
				return last
			}
			last = ev.At
		}
	}
	plain, bursty := span(1), span(8)
	if bursty >= plain {
		t.Fatalf("bursty stream (%v) not faster than plain (%v)", bursty, plain)
	}
}

// TestStreamZipfSkew: with a Zipf exponent, keyword 0 must dominate;
// uniform streams must not.
func TestStreamZipfSkew(t *testing.T) {
	inst := Generate(rand.New(rand.NewSource(21)), 10, 4, 10)
	counts := func(zipf float64) []int {
		c := make([]int, inst.Keywords)
		s := NewStream(inst, rand.New(rand.NewSource(22)), StreamConfig{Queries: 20000, ZipfS: zipf})
		for {
			ev, ok := s.Next()
			if !ok {
				return c
			}
			c[ev.Keyword]++
		}
	}
	skewed := counts(1.5)
	if skewed[0] < 3*skewed[9] {
		t.Fatalf("zipf skew too weak: hot=%d cold=%d", skewed[0], skewed[9])
	}
	uniform := counts(0)
	if uniform[0] > 2*uniform[9] {
		t.Fatalf("uniform stream skewed: %v", uniform)
	}
}

// TestStreamChurnScript: scripted churn events are emitted at their
// After offsets, interleaved with queries, and every removal index is
// valid against the running population when applied in order.
func TestStreamChurnScript(t *testing.T) {
	inst := Generate(rand.New(rand.NewSource(23)), 12, 4, 6)
	churn := ScriptChurn(rand.New(rand.NewSource(24)), inst, 7, 1000)
	if len(churn) != 7 {
		t.Fatalf("scripted %d events, want 7", len(churn))
	}
	s := NewStream(inst, rand.New(rand.NewSource(25)), StreamConfig{Queries: 1000, QPS: 1e6, Churn: churn})
	cur := inst
	queries, churns := 0, 0
	for {
		ev, ok := s.Next()
		if !ok {
			break
		}
		if ev.Churn == nil {
			queries++
			continue
		}
		churns++
		if ev.Keyword != -1 {
			t.Fatalf("churn event carries keyword %d", ev.Keyword)
		}
		if ev.Churn.After > queries {
			t.Fatalf("churn due after %d queries emitted at %d", ev.Churn.After, queries)
		}
		var err error
		if ev.Churn.Add != nil {
			cur, err = cur.WithAdvertiser(*ev.Churn.Add)
		} else {
			cur, err = cur.WithoutAdvertiser(ev.Churn.Remove)
		}
		if err != nil {
			t.Fatalf("churn event %d invalid: %v", churns, err)
		}
	}
	if queries != 1000 || churns != 7 {
		t.Fatalf("emitted %d queries and %d churn events, want 1000 and 7", queries, churns)
	}
	// 4 adds, 3 removes: net +1.
	if cur.N != inst.N+1 {
		t.Fatalf("final population %d, want %d", cur.N, inst.N+1)
	}
}

// TestStreamTrailingChurnDelivered: a churn event scheduled beyond
// the last query is still emitted before the stream reports
// exhaustion — Next's contract is every query AND every churn event.
func TestStreamTrailingChurnDelivered(t *testing.T) {
	inst := Generate(rand.New(rand.NewSource(26)), 5, 3, 4)
	a := RandomAdvertiser(rand.New(rand.NewSource(27)), 3, 4)
	s := NewStream(inst, rand.New(rand.NewSource(28)), StreamConfig{
		Queries: 10, QPS: 1e6,
		Churn: []ChurnEvent{{After: 999, Add: &a}},
	})
	queries, churns := 0, 0
	for {
		ev, ok := s.Next()
		if !ok {
			break
		}
		if ev.Churn != nil {
			churns++
			if queries != 10 {
				t.Fatalf("trailing churn emitted after %d queries, want 10", queries)
			}
		} else {
			queries++
		}
	}
	if queries != 10 || churns != 1 {
		t.Fatalf("emitted %d queries, %d churns; want 10 and 1", queries, churns)
	}
}

// TestBudgetOverlayChurn: AttachBudgets leaves the base draws alone,
// and the budget column survives (and shifts through) live churn
// exactly like the heavy overlay.
func TestBudgetOverlayChurn(t *testing.T) {
	base := Generate(rand.New(rand.NewSource(21)), 6, 3, 4)
	inst := Generate(rand.New(rand.NewSource(21)), 6, 3, 4)
	AttachBudgets(rand.New(rand.NewSource(22)), inst, 500)
	if !reflect.DeepEqual(base.Value, inst.Value) || !reflect.DeepEqual(base.Target, inst.Target) {
		t.Fatal("AttachBudgets perturbed the base draws")
	}
	for i, b := range inst.Budget {
		lo, hi := 0.5*float64(inst.Target[i])*500, 1.5*float64(inst.Target[i])*500
		if b < lo || b >= hi {
			t.Fatalf("budget %d = %v outside [%v, %v)", i, b, lo, hi)
		}
	}

	a := RandomAdvertiser(rand.New(rand.NewSource(23)), 3, 4)
	a.Budget = 123.5
	next, err := inst.WithAdvertiser(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(next.Budget) != 7 || next.Budget[6] != 123.5 || next.Budget[0] != inst.Budget[0] {
		t.Fatalf("budget column not extended: %v", next.Budget)
	}
	smaller, err := next.WithoutAdvertiser(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(smaller.Budget) != 6 || smaller.Budget[2] != next.Budget[3] || smaller.Budget[5] != 123.5 {
		t.Fatalf("budget column did not shift: %v", smaller.Budget)
	}

	// A budgeted newcomer joining an unbudgeted instance materializes
	// the column; a zero-budget newcomer does not.
	flat := Generate(rand.New(rand.NewSource(24)), 4, 3, 4)
	next2, err := flat.WithAdvertiser(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(next2.Budget) != 5 || next2.Budget[4] != 123.5 || next2.Budget[0] != 0 {
		t.Fatalf("flat instance budget overlay: %v", next2.Budget)
	}
	a.Budget = 0
	next3, err := flat.WithAdvertiser(a)
	if err != nil {
		t.Fatal(err)
	}
	if next3.Budget != nil {
		t.Fatalf("unlimited newcomer materialized budgets: %v", next3.Budget)
	}

	// ScriptChurn draws budgets for newcomers only into budgeted
	// populations, leaving the unbudgeted draw sequence untouched.
	plain := ScriptChurn(rand.New(rand.NewSource(25)), flat, 5, 1000)
	budgeted := ScriptChurn(rand.New(rand.NewSource(25)), inst, 5, 1000)
	for _, ev := range plain {
		if ev.Add != nil && ev.Add.Budget != 0 {
			t.Fatalf("unbudgeted churn drew a budget: %+v", ev.Add)
		}
	}
	saw := false
	for _, ev := range budgeted {
		if ev.Add != nil {
			if ev.Add.Budget <= 0 {
				t.Fatalf("budgeted churn newcomer without budget: %+v", ev.Add)
			}
			saw = true
		}
	}
	if !saw {
		t.Fatal("script produced no admissions")
	}
}
