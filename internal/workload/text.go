package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// This file generates the free-text query workload the broad-match
// router serves: a keyword catalog whose names overlap token-wise
// (BigramKeywordNames) and multi-token queries with Zipf token skew
// (TextQueries, and Stream's TextTokens mode). With single-token
// catalog names every query token either matches a keyword fully or
// not at all — relevance stays 0/1, the Section V regime; the bigram
// catalog is what makes fractional relevances, and therefore broad
// match, reachable.

// BigramKeywordNames names a catalog of keywords so that adjacent
// keywords overlap in one token: keyword q is "t<q> t<q+1>" over the
// token vocabulary t0…t<keywords>. A single token tq then scores 1/2
// against keywords q−1 and q, and the exact bigram "tq tq+1" scores 1
// against keyword q and 1/2 against its neighbors — the fractional
// -relevance catalog broad match needs.
func BigramKeywordNames(keywords int) []string {
	names := make([]string, keywords)
	for q := range names {
		names[q] = fmt.Sprintf("t%d t%d", q, q+1)
	}
	return names
}

// TextQueries draws t multi-token free-text queries over the bigram
// catalog's token vocabulary t0…t<keywords>: each query carries
// 1…maxTokens tokens (uniform length), tokens drawn with Zipf skew s
// when s > 1 (token 0 hottest) or uniformly otherwise. Deterministic
// given rng — the batch twin of Stream's TextTokens mode.
func TextQueries(rng *rand.Rand, keywords, t, maxTokens int, s float64) []string {
	var zipf *rand.Zipf
	if s > 1 && keywords > 0 {
		zipf = rand.NewZipf(rng, s, 1, uint64(keywords))
	}
	out := make([]string, t)
	var b strings.Builder
	for i := range out {
		out[i] = textQuery(rng, zipf, keywords, maxTokens, &b)
	}
	return out
}

// textQuery draws one query of 1…maxTokens tokens from t0…t<tokens>
// into b's reset buffer. Tokens may repeat within a query; the
// kwmatch scorer deduplicates, exactly as it does real queries.
func textQuery(rng *rand.Rand, zipf *rand.Zipf, tokens, maxTokens int, b *strings.Builder) string {
	b.Reset()
	n := 1 + rng.Intn(maxTokens)
	for w := 0; w < n; w++ {
		tok := 0
		if zipf != nil {
			tok = int(zipf.Uint64())
		} else if tokens > 0 {
			tok = rng.Intn(tokens + 1)
		}
		if w > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(b, "t%d", tok)
	}
	return b.String()
}
