package workload

import (
	"math/rand"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

func TestBigramKeywordNamesShape(t *testing.T) {
	names := BigramKeywordNames(4)
	want := []string{"t0 t1", "t1 t2", "t2 t3", "t3 t4"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("BigramKeywordNames(4) = %v, want %v", names, want)
	}
}

func TestTextQueriesDeterministic(t *testing.T) {
	a := TextQueries(rand.New(rand.NewSource(3)), 8, 200, 3, 1.2)
	b := TextQueries(rand.New(rand.NewSource(3)), 8, 200, 3, 1.2)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("TextQueries not deterministic for equal seeds")
	}
	if len(a) != 200 {
		t.Fatalf("got %d queries, want 200", len(a))
	}
	for _, q := range a {
		toks := strings.Fields(q)
		if len(toks) < 1 || len(toks) > 3 {
			t.Fatalf("query %q has %d tokens, want 1..3", q, len(toks))
		}
		for _, tok := range toks {
			n, err := strconv.Atoi(strings.TrimPrefix(tok, "t"))
			if err != nil || n < 0 || n > 8 {
				t.Fatalf("query %q token %q outside vocabulary t0..t8", q, tok)
			}
		}
	}
}

// TestTextQueriesZipfSkew checks the skew knob actually skews: with a
// hot Zipf exponent, token t0 dominates; uniform draws spread out.
func TestTextQueriesZipfSkew(t *testing.T) {
	count := func(s float64) int {
		hot := 0
		for _, q := range TextQueries(rand.New(rand.NewSource(4)), 16, 2000, 1, s) {
			if q == "t0" {
				hot++
			}
		}
		return hot
	}
	if skewed, uniform := count(1.5), count(0); skewed <= 2*uniform {
		t.Fatalf("Zipf skew ineffective: t0 count %d skewed vs %d uniform", skewed, uniform)
	}
}

// TestStreamTextTokens pins the Stream free-text mode: every query
// event carries Text with Keyword −1, the stream is replay
// -deterministic, and churn events still interleave.
func TestStreamTextTokens(t *testing.T) {
	inst := Generate(rand.New(rand.NewSource(5)), 20, 5, 6)
	cfg := StreamConfig{
		Queries: 300, ZipfS: 1.2, TextTokens: 3,
		Churn: []ChurnEvent{{After: 100, Remove: 3}},
	}
	drain := func() []Event {
		s := NewStream(inst, rand.New(rand.NewSource(6)), cfg)
		var evs []Event
		for {
			ev, ok := s.Next()
			if !ok {
				break
			}
			evs = append(evs, ev)
		}
		return evs
	}
	a, b := drain(), drain()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("text-mode stream not deterministic for equal seeds")
	}
	queries, churns := 0, 0
	for _, ev := range a {
		if ev.Churn != nil {
			churns++
			continue
		}
		queries++
		if ev.Keyword != -1 {
			t.Fatalf("text event has Keyword %d, want -1", ev.Keyword)
		}
		toks := strings.Fields(ev.Text)
		if len(toks) < 1 || len(toks) > cfg.TextTokens {
			t.Fatalf("text %q has %d tokens, want 1..%d", ev.Text, len(toks), cfg.TextTokens)
		}
	}
	if queries != cfg.Queries || churns != 1 {
		t.Fatalf("drained %d queries and %d churn events, want %d and 1", queries, churns, cfg.Queries)
	}
}
