// Package workload generates the synthetic auction workload of the
// paper's evaluation (Section V):
//
//   - 15 slots;
//   - search queries arrive at a constant rate, each containing one
//     keyword chosen uniformly at random out of 10; the chosen keyword
//     has relevance 1 for that query, all others 0;
//   - every bidder runs the ROI-equalizing heuristic of Section II-C;
//   - per keyword, a bidder's click value is uniform on {0,…,50},
//     subject to at least one non-zero value per bidder;
//   - target spending rates are uniform between 1 and the bidder's
//     maximum value over keywords;
//   - the interval [0.1, 0.9] is partitioned into 15 equal disjoint
//     intervals, the (j+1)-highest interval belonging to slot j, and
//     each advertiser's click probability for a slot is uniform within
//     that slot's interval (hence non-separable, but 1-dependent).
//
// Values are integers so the heuristic's ±1 bid steps keep bids
// integral, making the explicit and logical-update engines exactly
// comparable.
package workload

import "math/rand"

// Defaults from Section V.
const (
	DefaultSlots    = 15
	DefaultKeywords = 10
	MaxClickValue   = 50
	// ProbLow and ProbHigh bound the click-probability interval that
	// is partitioned among slots.
	ProbLow  = 0.1
	ProbHigh = 0.9
)

// Instance is one generated auction population.
type Instance struct {
	N        int // number of advertisers
	Slots    int // k
	Keywords int // number of keywords

	// Value[i][q] is advertiser i's click value for keyword q, an
	// integer in {0,…,50}; it doubles as the maximum bid.
	Value [][]int
	// Target[i] is advertiser i's target spending rate, an integer in
	// [1, max_q Value[i][q]].
	Target []int
	// InitialBid[i][q] is the bid each advertiser starts with,
	// ⌊Value/2⌋ (the paper does not specify a starting bid; half the
	// value exercises both the increment and decrement branches).
	InitialBid [][]int
	// ClickProb[i][j] is the probability advertiser i's ad is clicked
	// in slot j, drawn uniformly within slot j's interval.
	ClickProb [][]float64

	// Budget[i] is advertiser i's daily budget in currency — the cap
	// the cross-keyword budget subsystem (internal/budget) enforces
	// when an engine is configured with a budget policy. nil, or an
	// entry ≤ 0, means unlimited. Budgets are an overlay like Heavy:
	// Generate never draws them (keeping its draw sequence
	// byte-identical across PRs); AttachBudgets adds them afterwards.
	Budget []float64

	// Heavy marks Section III-F heavyweight ("famous") advertisers;
	// nil means every advertiser is a lightweight. Only MethodHeavy
	// markets read it.
	Heavy []bool
	// Shadow is the click-shadowing strength a heavyweight placed
	// above a slot exerts on that slot's occupant (each one multiplies
	// the click probability by 1−Shadow; see probmodel.ShadowFactors).
	// Zero means pattern-independent click probabilities.
	Shadow float64
}

// Generate builds an instance with n advertisers, k slots, and nk
// keywords using rng. Use the Default* constants for the paper's
// exact setup.
func Generate(rng *rand.Rand, n, k, keywords int) *Instance {
	inst := &Instance{
		N:          n,
		Slots:      k,
		Keywords:   keywords,
		Value:      make([][]int, n),
		Target:     make([]int, n),
		InitialBid: make([][]int, n),
		ClickProb:  make([][]float64, n),
	}
	for i := 0; i < n; i++ {
		a := RandomAdvertiser(rng, k, keywords)
		inst.Value[i] = a.Value
		inst.InitialBid[i] = a.InitialBid
		inst.Target[i] = a.Target
		inst.ClickProb[i] = a.ClickProb
	}
	return inst
}

// RandomAdvertiser draws one Section V advertiser — the exact
// per-bidder draw sequence of Generate, factored out so live churn
// (stream.Server.AddAdvertiser) can admit newcomers from the same
// population distribution. k is the slot count, keywords the catalog
// size.
func RandomAdvertiser(rng *rand.Rand, k, keywords int) Advertiser {
	a := Advertiser{
		Value:      make([]int, keywords),
		InitialBid: make([]int, keywords),
		ClickProb:  make([]float64, k),
	}
	maxVal := 0
	for q := 0; q < keywords; q++ {
		v := rng.Intn(MaxClickValue + 1)
		a.Value[q] = v
		if v > maxVal {
			maxVal = v
		}
	}
	if maxVal == 0 { // at least one non-zero click value
		q := rng.Intn(keywords)
		a.Value[q] = 1 + rng.Intn(MaxClickValue)
		maxVal = a.Value[q]
	}
	for q := 0; q < keywords; q++ {
		a.InitialBid[q] = a.Value[q] / 2
	}
	a.Target = 1 + rng.Intn(maxVal)

	width := (ProbHigh - ProbLow) / float64(k)
	for j := 0; j < k; j++ {
		// Slot j (0-based, topmost first) gets the (j+1)-highest
		// interval: [high − (j+1)·width, high − j·width).
		lo := ProbHigh - float64(j+1)*width
		a.ClickProb[j] = lo + rng.Float64()*width
	}
	return a
}

// GenerateHeavy is Generate plus a Section III-F population overlay:
// each advertiser is independently a heavyweight with probability
// heavyFrac, and shadow sets the click-shadowing strength. The base
// draws are identical to Generate with the same rng state, so a heavy
// instance differs from its flat twin only in the overlay fields.
func GenerateHeavy(rng *rand.Rand, n, k, keywords int, heavyFrac, shadow float64) *Instance {
	inst := Generate(rng, n, k, keywords)
	inst.Heavy = make([]bool, n)
	for i := range inst.Heavy {
		inst.Heavy[i] = rng.Float64() < heavyFrac
	}
	inst.Shadow = shadow
	return inst
}

// AttachBudgets overlays per-advertiser daily budgets on inst, drawn
// after the base population exactly as GenerateHeavy overlays its
// fields (the base draw sequence is untouched, so a budgeted instance
// differs from its unlimited twin only in the Budget column).
// meanAuctions scales the caps to the trace length: an advertiser
// spending exactly at its target rate exhausts a budget of
// Target·meanAuctions after meanAuctions auctions, and the drawn cap
// is uniform in [0.5, 1.5) times that — so over a run comfortably
// longer than meanAuctions, roughly target-tracking advertisers hit
// their caps at staggered times.
func AttachBudgets(rng *rand.Rand, inst *Instance, meanAuctions float64) {
	inst.Budget = make([]float64, inst.N)
	for i := range inst.Budget {
		inst.Budget[i] = RandomBudget(rng, inst.Target[i], meanAuctions)
	}
}

// RandomBudget draws one AttachBudgets-style budget for an advertiser
// with the given target spending rate — the newcomer source for live
// churn into a budgeted population.
func RandomBudget(rng *rand.Rand, target int, meanAuctions float64) float64 {
	return float64(target) * meanAuctions * (0.5 + rng.Float64())
}

// Queries draws a query stream of length t: one keyword uniformly at
// random per auction, as in Section V.
func (inst *Instance) Queries(rng *rand.Rand, t int) []int {
	qs := make([]int, t)
	for i := range qs {
		qs[i] = rng.Intn(inst.Keywords)
	}
	return qs
}

// QueriesZipf draws a skewed query stream: keyword popularity follows
// a Zipf law with exponent s > 1 (keyword 0 most popular). The paper
// notes that popular keywords like "music" or "book" keep the
// interested-advertiser set large even after keyword matching — this
// stream exists to stress that regime (the Section IV machinery's
// per-keyword trigger queues and lists see very uneven load).
func (inst *Instance) QueriesZipf(rng *rand.Rand, t int, s float64) []int {
	z := rand.NewZipf(rng, s, 1, uint64(inst.Keywords-1))
	qs := make([]int, t)
	for i := range qs {
		qs[i] = int(z.Uint64())
	}
	return qs
}
