package workload

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGenerateShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inst := Generate(rng, 100, DefaultSlots, DefaultKeywords)
	if inst.N != 100 || inst.Slots != 15 || inst.Keywords != 10 {
		t.Fatalf("bad shape: %+v", inst)
	}
	if len(inst.Value) != 100 || len(inst.ClickProb) != 100 || len(inst.Target) != 100 {
		t.Fatal("bad slice lengths")
	}
}

func TestGenerateRespectsSectionVRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	inst := Generate(rng, 500, DefaultSlots, DefaultKeywords)
	width := (ProbHigh - ProbLow) / float64(inst.Slots)
	for i := 0; i < inst.N; i++ {
		maxVal, anyNonZero := 0, false
		for q := 0; q < inst.Keywords; q++ {
			v := inst.Value[i][q]
			if v < 0 || v > MaxClickValue {
				t.Fatalf("value %d outside [0,%d]", v, MaxClickValue)
			}
			if v > 0 {
				anyNonZero = true
			}
			if v > maxVal {
				maxVal = v
			}
			if b := inst.InitialBid[i][q]; b != v/2 {
				t.Fatalf("initial bid %d != value/2 (%d)", b, v/2)
			}
		}
		if !anyNonZero {
			t.Fatalf("advertiser %d has all-zero click values", i)
		}
		if inst.Target[i] < 1 || inst.Target[i] > maxVal {
			t.Fatalf("target %d outside [1,%d]", inst.Target[i], maxVal)
		}
		for j := 0; j < inst.Slots; j++ {
			lo := ProbHigh - float64(j+1)*width
			hi := ProbHigh - float64(j)*width
			p := inst.ClickProb[i][j]
			if p < lo || p >= hi {
				t.Fatalf("click prob %g for slot %d outside its interval [%g,%g)", p, j, lo, hi)
			}
		}
	}
}

// TestSlotIntervalsOrdered: topmost slot gets the highest interval —
// ads at the top are more likely to be clicked, as the paper assumes.
func TestSlotIntervalsOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inst := Generate(rng, 50, DefaultSlots, DefaultKeywords)
	for i := 0; i < inst.N; i++ {
		for j := 0; j+1 < inst.Slots; j++ {
			if inst.ClickProb[i][j] <= inst.ClickProb[i][j+1] {
				t.Fatalf("click prob not decreasing with slot: adv %d slots %d,%d: %g vs %g",
					i, j, j+1, inst.ClickProb[i][j], inst.ClickProb[i][j+1])
			}
		}
	}
}

func TestQueriesUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	inst := Generate(rng, 10, 3, DefaultKeywords)
	qs := inst.Queries(rand.New(rand.NewSource(5)), 10000)
	counts := make([]int, inst.Keywords)
	for _, q := range qs {
		if q < 0 || q >= inst.Keywords {
			t.Fatalf("query keyword %d out of range", q)
		}
		counts[q]++
	}
	for q, c := range counts {
		if c < 700 || c > 1300 { // ±30% of the uniform 1000
			t.Fatalf("keyword %d drawn %d times out of 10000; not uniform", q, c)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		a := Generate(rand.New(rand.NewSource(seed)), 20, 4, 5)
		b := Generate(rand.New(rand.NewSource(seed)), 20, 4, 5)
		for i := 0; i < 20; i++ {
			for q := 0; q < 5; q++ {
				if a.Value[i][q] != b.Value[i][q] {
					return false
				}
			}
			for j := 0; j < 4; j++ {
				if a.ClickProb[i][j] != b.ClickProb[i][j] {
					return false
				}
			}
			if a.Target[i] != b.Target[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestQueriesZipfSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	inst := Generate(rng, 10, 3, DefaultKeywords)
	qs := inst.QueriesZipf(rand.New(rand.NewSource(7)), 10000, 1.5)
	counts := make([]int, inst.Keywords)
	for _, q := range qs {
		if q < 0 || q >= inst.Keywords {
			t.Fatalf("zipf keyword %d out of range", q)
		}
		counts[q]++
	}
	if counts[0] < 3*counts[inst.Keywords-1] {
		t.Fatalf("zipf stream not skewed: head %d, tail %d", counts[0], counts[inst.Keywords-1])
	}
	if counts[0] == 10000 {
		t.Fatal("zipf stream degenerate (single keyword)")
	}
}
