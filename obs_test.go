package ssa

// Telemetry contracts at the top of the stack: instrumenting the
// serving tiers must cost nothing per auction (TestObsSteadyStateAllocs
// — the registry writes are wait-free atomics and the tracer's
// unsampled branch is two instructions), and the metrics registry IS
// the accounting, not a parallel tally — every figure a drained
// Stats/Counters call reports must be readable back, identical, from
// the rendered exposition text (TestStatsViewMatchesRegistry).

import (
	"math/rand"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/racetest"
	"repro/internal/server"
	"repro/internal/stream"
	"repro/internal/wire"
	"repro/internal/workload"
)

// promValue extracts one series' value from rendered exposition text.
// Floats are rendered with strconv 'g'/-1, so the parse round-trips
// bit for bit.
func promValue(t *testing.T, prom []byte, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(string(prom), "\n") {
		if v, ok := strings.CutPrefix(line, name+" "); ok {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				t.Fatalf("series %s: %v", name, err)
			}
			return f
		}
	}
	t.Fatalf("series %s absent from render", name)
	return 0
}

// TestObsSteadyStateAllocs: the fully instrumented hot paths — shard
// counters, the revenue float cell, the per-method latency histogram,
// stream admission counters, the networked tier's frame-kind lanes,
// and a live 1-in-8 trace sampler — still allocate nothing per
// auction once warm. RH and TALU cover both winner-determination
// pipelines through the streaming layer; the server subtest measures
// the loopback round trip process-wide with a client RTT histogram
// recording on top.
func TestObsSteadyStateAllocs(t *testing.T) {
	if racetest.Enabled {
		t.Skip("allocation accounting is perturbed under -race")
	}
	for _, method := range []SimMethod{SimRH, SimRHTALU} {
		t.Run("stream/"+method.String(), func(t *testing.T) {
			inst := GenerateInstance(42, 500, DefaultSlots, DefaultKeywords)
			s := NewStreamServer(inst, StreamConfig{
				Engine: EngineConfig{
					Shards: 2, QueueDepth: 256, Method: method, ClickSeed: 7,
					TraceSample: 8,
				},
			})
			defer s.Close()
			queries := QueryStream(inst, 9, 4096)
			for _, q := range queries[:2048] {
				s.Submit(q)
			}
			for s.Stats().Pending > 0 {
				runtime.Gosched()
			}
			next := 2048
			allocs := testing.AllocsPerRun(1000, func() {
				s.Submit(queries[next%len(queries)])
				next++
			})
			if allocs != 0 {
				t.Fatalf("instrumented steady-state submit allocates %.2f objects/op, want 0", allocs)
			}
		})
	}
	t.Run("server", func(t *testing.T) {
		inst := workload.Generate(rand.New(rand.NewSource(7)), 100, 5, 8)
		s, err := server.Listen("127.0.0.1:0", inst, server.Config{Stream: stream.Config{
			Engine: engine.Config{Shards: 2, QueueDepth: 64, Method: engine.MethodRH, ClickSeed: 5, TraceSample: 8},
		}})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		rtt := NewMetricsRegistry().Histogram("ssa_client_rtt_ns", "end-to-end round trip")
		c, err := client.Dial(s.Addr(), client.Options{RTT: rtt})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		var out wire.Outcome
		for i := 0; i < 2048; i++ {
			if err := c.AuctionInto(i%inst.Keywords, &out); err != nil {
				t.Fatal(err)
			}
		}
		next := 0
		allocs := testing.AllocsPerRun(1500, func() {
			if err := c.AuctionInto(next%inst.Keywords, &out); err != nil {
				t.Fatal(err)
			}
			next++
		})
		if allocs != 0 {
			t.Fatalf("instrumented networked auction allocates %.2f objects/op, want 0", allocs)
		}
		if rtt.Count() == 0 {
			t.Fatal("client RTT histogram recorded nothing")
		}
	})
}

// TestStatsViewMatchesRegistry: drained accounting and the rendered
// registry must agree exactly — integer counters equal, revenue bit
// for bit — at every tier: the batch engine, the exact-routing
// stream, the broad-match stream (the 4-leg identity submitted ==
// served + shed + unrouted + overmatched, every leg scraped), and the
// networked server's connection-layer counters. Run under -race this
// also soaks the render path against live writers.
func TestStatsViewMatchesRegistry(t *testing.T) {
	t.Run("batch", func(t *testing.T) {
		inst := GenerateInstance(21, 300, 6, 8)
		queries := QueryStream(inst, 22, 4000)
		e := NewEngine(inst, EngineConfig{Shards: 3, QueueDepth: 32, Method: SimRHTALU, ClickSeed: 33})
		defer e.Close()
		// One drained Serve call: its Stats.Revenue sums the per-shard
		// accumulators in shard order, the same order the registry's
		// FloatCounter lanes sum in — bit-for-bit comparable. (Summing
		// several batch Stats re-associates the adds and may differ in
		// the last ulp; the integer counters are exact either way.)
		total := *e.Serve(queries)
		m := e.Metrics()
		if got := m.Auctions.Value(); got != int64(total.Auctions) {
			t.Fatalf("ssa_auctions_total %d != drained %d", got, total.Auctions)
		}
		prom := append([]byte(nil), m.Registry.Render()...)
		if got := promValue(t, prom, "ssa_auctions_total"); got != float64(total.Auctions) {
			t.Fatalf("rendered auctions %v != drained %d", got, total.Auctions)
		}
		if got := promValue(t, prom, "ssa_revenue_total"); got != total.Revenue {
			t.Fatalf("rendered revenue %v not bit-identical to drained %v", got, total.Revenue)
		}
		if got := promValue(t, prom, "ssa_clicks_total"); got != float64(total.Clicks) {
			t.Fatalf("rendered clicks %v != drained %d", got, total.Clicks)
		}
		if got := m.Latency.Count(); got != int64(total.Auctions) {
			t.Fatalf("latency histogram holds %d records for %d auctions", got, total.Auctions)
		}
	})
	t.Run("stream", func(t *testing.T) {
		inst := GenerateInstance(42, 300, DefaultSlots, DefaultKeywords)
		s := NewStreamServer(inst, StreamConfig{
			Engine:   EngineConfig{Shards: 3, QueueDepth: 8, Method: SimRH, ClickSeed: 7},
			Overload: OverloadShed,
		})
		reg := s.Engine().Metrics().Registry
		queries := QueryStream(inst, 9, 6000)
		for _, q := range queries {
			s.Submit(q)
			_ = reg.Render() // concurrent scrapes while shards serve
		}
		st := s.Close()
		prom := append([]byte(nil), reg.Render()...)
		if st.Submitted != st.Served+st.Shed {
			t.Fatalf("drained identity: %+v", st)
		}
		if got := promValue(t, prom, "ssa_stream_submitted_total"); got != float64(st.Submitted) {
			t.Fatalf("rendered submitted %v != drained %d", got, st.Submitted)
		}
		if got := promValue(t, prom, "ssa_auctions_total"); got != float64(st.Served) {
			t.Fatalf("rendered auctions %v != drained served %d", got, st.Served)
		}
		if got := promValue(t, prom, "ssa_stream_shed_total"); got != float64(st.Shed) {
			t.Fatalf("rendered shed %v != drained %d", got, st.Shed)
		}
		if got := promValue(t, prom, "ssa_revenue_total"); got != st.Revenue {
			t.Fatalf("rendered revenue %v not bit-identical to drained %v", got, st.Revenue)
		}
		var lanes int64
		for i, ps := range st.PerShard {
			lane := promValue(t, prom, `ssa_auctions_by_shard_total{shard="`+strconv.Itoa(i)+`"}`)
			if lane != float64(ps.Served) {
				t.Fatalf("shard %d lane %v != drained %d", i, lane, ps.Served)
			}
			lanes += int64(ps.Served)
		}
		if lanes != st.Served {
			t.Fatalf("shard lanes sum %d != served %d", lanes, st.Served)
		}
	})
	t.Run("broadmatch", func(t *testing.T) {
		inst := GenerateInstance(42, 300, DefaultSlots, DefaultKeywords)
		s := NewStreamServer(inst, StreamConfig{
			Engine: EngineConfig{
				Shards: 3, QueueDepth: 8, Method: SimRHTALU, ClickSeed: 7,
				KeywordNames: BigramKeywordNames(DefaultKeywords),
				Broadmatch:   BroadmatchConfig{Enabled: true, Threshold: 0.4, Squash: 0.5, Seed: 11},
				Reserve:      10,
			},
			Overload: OverloadShed,
		})
		reg := s.Engine().Metrics().Registry
		for _, q := range TextQueries(9, DefaultKeywords, 6000, 3, 1.2) {
			s.SubmitText(q)
		}
		st := s.Close()
		prom := append([]byte(nil), reg.Render()...)
		if st.Submitted != st.Served+st.Shed+st.Unrouted+st.Overmatched {
			t.Fatalf("drained 4-leg identity: %+v", st)
		}
		legs := map[string]int64{
			"ssa_stream_submitted_total":   st.Submitted,
			"ssa_auctions_total":           st.Served,
			"ssa_stream_shed_total":        st.Shed,
			"ssa_stream_unrouted_total":    st.Unrouted,
			"ssa_stream_overmatched_total": st.Overmatched,
		}
		for name, want := range legs {
			if got := promValue(t, prom, name); got != float64(want) {
				t.Fatalf("rendered %s %v != drained %d", name, got, want)
			}
		}
	})
	t.Run("network", func(t *testing.T) {
		inst := workload.Generate(rand.New(rand.NewSource(7)), 100, 5, 8)
		s, err := server.Listen("127.0.0.1:0", inst, server.Config{Stream: stream.Config{
			Engine: engine.Config{Shards: 2, QueueDepth: 64, Method: engine.MethodRH, ClickSeed: 5},
		}})
		if err != nil {
			t.Fatal(err)
		}
		c, err := client.Dial(s.Addr(), client.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		var out wire.Outcome
		const auctions = 3000
		for i := 0; i < auctions; i++ {
			if err := c.AuctionInto(i%inst.Keywords, &out); err != nil {
				t.Fatal(err)
			}
		}
		// The wire stats-v2 frame carries the same histogram the
		// registry renders: counts must match the served tally.
		v2, err := c.StatsV2()
		if err != nil {
			t.Fatal(err)
		}
		if v2.HistCount != auctions {
			t.Fatalf("wire histogram count %d != %d auctions", v2.HistCount, auctions)
		}
		var bucketSum int64
		for _, bk := range v2.Buckets {
			bucketSum += bk.Count
		}
		if bucketSum != v2.HistCount {
			t.Fatalf("wire buckets sum %d != count %d", bucketSum, v2.HistCount)
		}
		s.Close()
		sub, served, shed, rejected, unrouted := s.Counters()
		if sub != served+shed+rejected {
			t.Fatalf("connection identity: sub=%d served=%d shed=%d rejected=%d", sub, served, shed, rejected)
		}
		prom := append([]byte(nil), s.Registry().Render()...)
		legs := map[string]int64{
			"ssa_server_submitted_total": sub,
			"ssa_server_served_total":    served,
			"ssa_server_shed_total":      shed,
			"ssa_server_rejected_total":  rejected,
			"ssa_server_unrouted_total":  unrouted,
		}
		for name, want := range legs {
			if got := promValue(t, prom, name); got != float64(want) {
				t.Fatalf("rendered %s %v != drained %d", name, got, want)
			}
		}
		if got := promValue(t, prom, "ssa_auctions_total"); got != float64(served) {
			t.Fatalf("engine auctions %v != connection served %d", got, served)
		}
	})
}
