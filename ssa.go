// Package ssa (sponsored search auctions) is the public API of this
// library, a from-scratch reproduction of Martin, Gehrke, and
// Halpern, "Toward Expressive and Scalable Sponsored Search
// Auctions" (ICDE 2008, arXiv:0809.0116).
//
// # What the library does
//
// Advertisers express multi-feature preferences as Bids tables:
// OR-bids over Boolean formulas of outcome predicates — Click,
// Purchase, Slot1…Slotk, and (in the Section III-F extension) Heavy_j
// ("slot j holds a famous advertiser"). Winner determination — the
// expected-revenue-maximizing assignment of slots to advertisers
// under pay-what-you-bid — runs in O(nk log k + k⁵) via the paper's
// reduced-graph Hungarian algorithm whenever every bid is a
// 1-dependent event, which the library verifies; bids on events
// involving two or more advertisers' placements are rejected, since
// winner determination for them is APX-hard (Theorem 3).
//
// Dynamic strategies are bidding programs: a small SQL dialect with
// triggers (package-internal interpreter), or native Go strategies.
// The ROI-equalizing heuristic of the paper's Figure 5 ships in both
// forms, verified equivalent, together with the Section IV machinery
// (threshold algorithm over sorted bid lists + logical updates with
// trigger queues) that avoids evaluating most programs on most
// auctions.
//
// # Serving engine
//
// Beyond the one-query-at-a-time simulation, the library serves
// query streams concurrently: Engine partitions the keyword space
// across worker shards, each keyword owning an independent market
// (bids, ROI accounting, click randomness), and Serve fans a stream
// out over bounded channels while reporting throughput and latency
// percentiles. Winner determination on the serving path is the
// paper's reduced Hungarian algorithm running allocation-free in
// per-worker workspaces. The engine's contract is sequential
// equivalence: for every keyword, outcomes are bit-identical to a
// sequential SimWorld over that keyword's subsequence of the stream
// (seeded with KeywordClickSeed), so shard count and queue depth are
// pure performance knobs — a property the engine's race-detector
// equivalence tests pin. Batch callers of the expressive-bid
// winner-determination API use a Determiner to reuse matrices and
// matching workspaces across auctions.
//
// For open-world traffic — queries arriving continuously against an
// evolving advertiser base, the paper's own premise — StreamServer
// wraps the engine with persistent per-shard workers, bounded-queue
// admission control (block or shed, every dropped query accounted),
// live advertiser churn applied at auction boundaries via epoch
// fences (post-churn outcomes byte-identical to a freshly built
// engine over the new population), and a graceful drain that flushes
// rolling-window latency and throughput statistics. SimStream
// generates matching workloads: Poisson or bursty arrivals, Zipf
// keyword skew, and scripted churn timelines.
//
// Daily budgets — the bidding language's first-named constraint —
// are enforced across every keyword market by the cross-keyword
// budget subsystem: AttachBudgets overlays per-advertiser caps on an
// instance, and an engine or streaming server configured with a
// BudgetConfig (PolicyHard or PolicyPaced) tracks global spend in an
// eventually-consistent sharded ledger with wait-free reads, a
// documented overspend bound, and totals that settle exactly to the
// per-market accounting after a drain.
//
// The networked serving tier puts all of that behind TCP:
// ListenNetServer wraps a StreamServer in a length-prefixed,
// CRC-checked binary wire protocol with per-connection admission
// control, and DialNetClient is the matching pipelined client driver,
// so separate OS processes can drive auctions through a real socket
// path with the same exact accounting (submitted == served + shed +
// rejected after a drain) and zero steady-state allocations end to
// end.
//
// # Quick start
//
//	model := ssa.NewModel(2, 2) // 2 advertisers, 2 slots
//	model.Click[0][0], model.Click[0][1] = 0.7, 0.4
//	model.Click[1][0], model.Click[1][1] = 0.6, 0.3
//	auction := &ssa.Auction{
//		Slots: 2,
//		Probs: model,
//		Advertisers: []ssa.Advertiser{
//			{ID: "nike", Bids: ssa.MustParseBids("Click : 5\nPurchase : 20")},
//			{ID: "adidas", Bids: ssa.MustParseBids("Click AND Slot1 : 9")},
//		},
//	}
//	res, err := auction.Determine(ssa.RH)
//
// See the examples directory for complete programs and DESIGN.md for
// the module inventory.
package ssa

import (
	"math/rand"

	"repro/internal/broadmatch"
	"repro/internal/budget"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/formula"
	"repro/internal/journal"
	"repro/internal/kwmatch"
	"repro/internal/obs"
	"repro/internal/probmodel"
	"repro/internal/server"
	"repro/internal/sqlmini"
	"repro/internal/strategy"
	"repro/internal/stream"
	"repro/internal/table"
	"repro/internal/wire"
	"repro/internal/workload"
)

// Core auction types.
type (
	// Auction is one winner-determination instance: advertisers with
	// Bids tables plus a click/purchase probability model.
	Auction = core.Auction
	// Advertiser is one bidder.
	Advertiser = core.Advertiser
	// Result is a winner-determination outcome.
	Result = core.Result
	// Method selects a winner-determination algorithm.
	Method = core.Method
	// HeavyAuction is the Section III-F heavyweight/lightweight model.
	HeavyAuction = core.HeavyAuction
)

// Winner-determination methods.
const (
	// LP solves the assignment linear program with the simplex method.
	LP = core.MethodLP
	// H is the Hungarian algorithm on the full bipartite graph.
	H = core.MethodHungarian
	// RH is the paper's reduced-graph algorithm (Section III-E) — the
	// method to use.
	RH = core.MethodReduced
	// RHParallel is RH with a tree-parallel top-k phase.
	RHParallel = core.MethodReducedParallel
	// Separable is the pre-paper platforms' sort-based allocation;
	// valid only for separable click probabilities and Click-only bids.
	Separable = core.MethodSeparable
	// Brute enumerates all allocations (tiny inputs; testing).
	Brute = core.MethodBrute
)

// ErrNotOneDependent is returned when bids fall outside the tractable
// 1-dependent fragment of Theorem 2.
var ErrNotOneDependent = core.ErrNotOneDependent

// Determiner solves winner determination repeatedly without
// rebuilding per-call state: the Theorem 2 adjusted matrix and the
// reduced-Hungarian workspace are reused across Determine calls. One
// Determiner per serving goroutine.
type Determiner = core.Determiner

// NewDeterminer returns an empty Determiner; buffers grow to the
// largest auction seen.
func NewDeterminer() *Determiner { return core.NewDeterminer() }

// Bidding-language types.
type (
	// Formula is a Boolean combination of outcome predicates.
	Formula = formula.Expr
	// Bid is one Bids-table row: pay Value if F holds.
	Bid = formula.Bid
	// Bids is an advertiser's whole table (an OR-bid).
	Bids = formula.Bids
	// Outcome is a concrete auction outcome for formula evaluation.
	Outcome = formula.Outcome
)

// ParseFormula parses a bid formula, e.g. "Click AND (Slot1 OR Slot2)".
func ParseFormula(src string) (Formula, error) { return formula.Parse(src) }

// MustParseFormula is ParseFormula for literals; it panics on error.
func MustParseFormula(src string) Formula { return formula.MustParse(src) }

// ParseBids parses a textual Bids table, one "formula : value" row
// per line.
func ParseBids(src string) (Bids, error) { return formula.ParseBids(src) }

// MustParseBids is ParseBids for literals; it panics on error.
func MustParseBids(src string) Bids {
	b, err := formula.ParseBids(src)
	if err != nil {
		panic(err)
	}
	return b
}

// OneDependent reports whether f is a 1-dependent, heavyweight-free
// event — the fragment with polynomial winner determination.
func OneDependent(f Formula) bool { return formula.OneDependent(f) }

// Probability models.
type (
	// Model is a per-advertiser, per-slot click/purchase model.
	Model = probmodel.Model
	// HeavyModel conditions click probabilities on the heavyweight
	// pattern (Section III-F).
	HeavyModel = probmodel.HeavyModel
	// SeparableModel is the advertiser-factor × slot-factor special
	// case (Section III-C).
	SeparableModel = probmodel.Separable
)

// NewModel allocates a zeroed model for n advertisers and k slots.
func NewModel(n, k int) *Model { return probmodel.New(n, k) }

// ShadowFactors builds the natural heavyweight shadowing model: each
// heavyweight above a slot scales its click probability by 1−shadow.
func ShadowFactors(k int, shadow float64) [][]float64 {
	return probmodel.ShadowFactors(k, shadow)
}

// Bidding programs (the Section II language) and the relational
// substrate they run against: each advertiser's program owns a
// private database (its Keywords and Bids tables plus scalars the
// provider maintains) and is triggered by inserts into its Query
// table.
type (
	// Program is a compiled bidding program in the SQL-like dialect.
	Program = sqlmini.Program
	// DB is one bidding program's database.
	DB = table.DB
	// Table is a named relation with insert triggers.
	Table = table.Table
	// Column declares a table column.
	Column = table.Column
	// Row is one tuple.
	Row = table.Row
	// Value is a typed SQL value.
	Value = table.Value
)

// NewDB returns an empty program database.
func NewDB() *DB { return table.NewDB() }

// NewTable creates an empty table.
func NewTable(name string, cols ...Column) *Table { return table.New(name, cols...) }

// SQL value constructors and kinds.
var (
	Float  = table.Float
	String = table.String
)

// F makes a numeric SQL value; S a string value.
func F(f float64) Value { return table.F(f) }
func S(s string) Value  { return table.S(s) }

// CompileProgram compiles bidding-program source (see the Figure 5
// example under examples/roiprogram).
func CompileProgram(src string) (*Program, error) { return sqlmini.Compile(src) }

// Keyword matching: the provider-side pruning step of Section IV —
// only advertisers whose registered keywords overlap the query need
// their bidding programs evaluated.
type (
	// KeywordIndex is an inverted index from query tokens to
	// interested advertisers.
	KeywordIndex = kwmatch.Index
	// KeywordMatch is one scored (advertiser, keyword) hit.
	KeywordMatch = kwmatch.Match
	// KeywordScratch is the caller-owned workspace of the
	// allocation-free QueryInto/ScoreInto hot path.
	KeywordScratch = kwmatch.Scratch
)

// NewKeywordIndex returns an empty keyword index.
func NewKeywordIndex() *KeywordIndex { return kwmatch.New() }

// Simulation (the Section V evaluation world).
type (
	// SimInstance is a generated §V auction population.
	SimInstance = workload.Instance
	// SimWorld runs auctions under one winner-determination method.
	SimWorld = strategy.World
	// SimMethod selects the simulation pipeline (SimLP, SimH, SimRH,
	// SimRHTALU).
	SimMethod = strategy.Method
	// SimOutcome reports one simulated auction.
	SimOutcome = strategy.Outcome
)

// Simulation methods (Figure 12's four curves plus the parallel-RH
// ablation and the Section III-F heavyweight path).
const (
	SimLP         = strategy.MethodLP
	SimH          = strategy.MethodH
	SimRH         = strategy.MethodRH
	SimRHTALU     = strategy.MethodRHTALU
	SimRHParallel = strategy.MethodRHParallel
	// SimHeavy serves the heavyweight/lightweight model: winner
	// determination enumerates the 2^k heavyweight patterns through a
	// reused determiner, and pricing plus the user simulation condition
	// on the realized pattern. Per-auction cost grows as 2^Slots; use
	// small slot counts.
	SimHeavy = strategy.MethodHeavy
)

// SimPricing selects the payment rule of a simulation world or
// serving engine.
type SimPricing = strategy.Pricing

// Payment rules: generalized second pricing (the Section V default)
// and Vickrey opportunity costs (Theorem 1's "very simple
// computation" given winner determination — one counterfactual solve
// per winner, run in reused workspaces on the serving path).
const (
	PricingGSP = strategy.PricingGSP
	PricingVCG = strategy.PricingVCG
)

// NewSimWorld builds a simulation world over inst.
func NewSimWorld(inst *SimInstance, m SimMethod, clickSeed int64) *SimWorld {
	return strategy.NewWorld(inst, m, clickSeed)
}

// NewSimWorldPriced is NewSimWorld with an explicit payment rule.
func NewSimWorldPriced(inst *SimInstance, m SimMethod, pricing SimPricing, clickSeed int64) *SimWorld {
	return strategy.NewWorldPriced(inst, m, pricing, clickSeed)
}

// SimWorldOpts bundles every world-construction knob (method, payment
// rule, click seed, budget lane, and the MethodHeavy enumeration
// worker count HeavyParallelism); zero values are the historical
// defaults.
type SimWorldOpts = strategy.WorldOpts

// NewSimWorldOpts builds a simulation world from an options bundle —
// the full constructor behind the positional NewSimWorld variants.
func NewSimWorldOpts(inst *SimInstance, o SimWorldOpts) *SimWorld {
	return strategy.NewWorldOpts(inst, o)
}

// Concurrent serving (the keyword-sharded engine).
type (
	// Engine is the concurrent keyword-sharded serving engine: one
	// independent market per keyword, one worker goroutine per shard,
	// bounded queues with backpressure, and per-keyword sequential
	// equivalence to SimWorld as its correctness contract.
	Engine = engine.Engine
	// EngineConfig tunes shard count, queue depth, winner-determination
	// method, payment rule (GSP or VCG), click seed, and the keyword
	// catalog for text routing.
	EngineConfig = engine.Config
	// EngineStats aggregates one Engine.Serve call: revenue, clicks,
	// fill rate, throughput, and latency percentiles.
	EngineStats = engine.Stats
)

// NewEngine builds a serving engine over a Section V instance.
func NewEngine(inst *SimInstance, cfg EngineConfig) *Engine {
	return engine.New(inst, cfg)
}

// KeywordClickSeed derives the click seed of one keyword's market
// from an engine's base seed — the seed to give a sequential SimWorld
// that replays a single keyword's auctions.
func KeywordClickSeed(base int64, q int) int64 { return engine.KeywordSeed(base, q) }

// Open-world streaming (the long-running serving layer).
type (
	// StreamServer is the long-running open-world front end over the
	// sharded engine: persistent per-shard workers fed by Submit and
	// SubmitText, bounded queues with a block-or-shed admission policy,
	// live advertiser churn applied at auction boundaries through
	// per-shard epoch fences, and a graceful Close that drains every
	// queue and flushes the final statistics. Its contract is the
	// engine's, extended across churn: post-churn outcomes are
	// byte-identical to a freshly built engine over the post-churn
	// population.
	StreamServer = stream.Server
	// StreamConfig tunes a streaming server: the wrapped EngineConfig,
	// the overload policy, the rolling stats window, and an optional
	// per-auction outcome sink.
	StreamConfig = stream.Config
	// StreamStats is one streaming snapshot: admission accounting
	// (Submitted == Served + Shed after a drain), rolling-window
	// latency percentiles and throughput, churn epoch, and the
	// per-shard breakdown.
	StreamStats = stream.Stats
	// StreamPolicy selects what a saturated shard queue means to
	// Submit: OverloadBlock (backpressure) or OverloadShed (wait-free
	// rejection, counted per shard).
	StreamPolicy = stream.Policy
	// SimAdvertiser is one bidder row detached from an instance — the
	// unit of live churn.
	SimAdvertiser = workload.Advertiser
	// SimStream is a deterministic open-world arrival generator:
	// Poisson or bursty interarrivals, optional Zipf keyword skew,
	// scripted churn events.
	SimStream = workload.Stream
	// SimStreamConfig shapes a SimStream.
	SimStreamConfig = workload.StreamConfig
	// SimStreamEvent is one arrival: a keyword query or a churn event.
	SimStreamEvent = workload.Event
	// SimChurnEvent is one scripted population change.
	SimChurnEvent = workload.ChurnEvent
)

// Overload policies for StreamConfig.
const (
	OverloadBlock = stream.Block
	OverloadShed  = stream.Shed
)

// NewStreamServer starts a streaming server over a Section V instance;
// its shard workers are live immediately.
func NewStreamServer(inst *SimInstance, cfg StreamConfig) *StreamServer {
	return stream.NewServer(inst, cfg)
}

// NewSimStream builds a deterministic open-world arrival stream over
// inst's keyword catalog.
func NewSimStream(inst *SimInstance, seed int64, cfg SimStreamConfig) *SimStream {
	return workload.NewStream(inst, rand.New(rand.NewSource(seed)), cfg)
}

// RandomAdvertiser draws one advertiser from the Section V population
// distribution — the newcomer source for live churn.
func RandomAdvertiser(seed int64, inst *SimInstance) SimAdvertiser {
	return workload.RandomAdvertiser(rand.New(rand.NewSource(seed)), inst.Slots, inst.Keywords)
}

// ScriptChurn draws a valid churn timeline of n events spread evenly
// over a stream of totalQueries, alternating admissions and evictions.
func ScriptChurn(seed int64, inst *SimInstance, n, totalQueries int) []SimChurnEvent {
	return workload.ScriptChurn(rand.New(rand.NewSource(seed)), inst, n, totalQueries)
}

// Probabilistic broad match (internal/broadmatch): multi-token
// queries fan out to every keyword market whose name scores at least
// a relevance threshold under kwmatch subset scoring, with seeded,
// replayable per-(query,keyword) match draws; the highest-relevance
// admitted market serves the impression with its bids squashed by
// relevance^Squash and reserve-filtered, and the losers are counted
// as overmatched. Enable it by setting EngineConfig.Broadmatch (and
// optionally EngineConfig.Reserve); neutral knobs (threshold 1,
// squash 1, reserve 0) are byte-identical to exact routing.
type (
	// BroadmatchConfig tunes the router: Enabled, Threshold, Squash,
	// and the match-draw Seed.
	BroadmatchConfig = broadmatch.Config
	// BroadmatchRouter scores and probabilistically admits candidate
	// markets for free-text queries.
	BroadmatchRouter = broadmatch.Router
	// BroadmatchCandidate is one admitted (keyword, relevance, weight)
	// candidate.
	BroadmatchCandidate = broadmatch.Candidate
)

// NewBroadmatchRouter builds a standalone broad-match router over a
// keyword catalog; engines build their own from
// EngineConfig.Broadmatch and EngineConfig.KeywordNames.
func NewBroadmatchRouter(names []string, cfg BroadmatchConfig) *BroadmatchRouter {
	return broadmatch.New(names, cfg)
}

// BigramKeywordNames names a catalog so adjacent keywords share one
// token (keyword q is "t<q> t<q+1>") — the fractional-relevance
// catalog that makes broad match reachable from generated workloads.
func BigramKeywordNames(keywords int) []string {
	return workload.BigramKeywordNames(keywords)
}

// TextQueries draws t deterministic multi-token free-text queries of
// 1…maxTokens tokens over the bigram catalog's vocabulary, with Zipf
// token skew zipfS when > 1 — the batch twin of the SimStream's
// TextTokens mode.
func TextQueries(seed int64, keywords, t, maxTokens int, zipfS float64) []string {
	return workload.TextQueries(rand.New(rand.NewSource(seed)), keywords, t, maxTokens, zipfS)
}

// Cross-keyword budgets (the internal/budget subsystem): per-advertiser
// daily caps enforced across every keyword market through an
// eventually-consistent sharded spend ledger — wait-free snapshot
// reads on the auction hot path, per-market deltas published on a
// refresh cadence, documented overspend bound of
// lanes × refresh × max-per-auction-price, and exact totals after a
// drain.
type (
	// BudgetConfig tunes enforcement: the policy, the snapshot refresh
	// cadence, the pacing horizon, and the pacing seed. Budgets
	// themselves live on the instance (SimInstance.Budget,
	// SimAdvertiser.Budget).
	BudgetConfig = budget.Config
	// BudgetPolicy selects the enforcement rule.
	BudgetPolicy = budget.Policy
	// BudgetLedger is one population's cross-keyword spend state;
	// Engine.Ledger and StreamServer expose it for inspection.
	BudgetLedger = budget.Ledger
	// BudgetLane is one market's slice of the ledger.
	BudgetLane = budget.Lane
)

// Budget enforcement policies.
const (
	// PolicyOff disables the subsystem (the default): outcomes are
	// byte-identical to an engine without budget support.
	PolicyOff = budget.PolicyOff
	// PolicyHard excludes an advertiser once its spend estimate
	// reaches the cap — the serving-side analogue of the bidding
	// language's budget-guard program.
	PolicyHard = budget.PolicyHard
	// PolicyPaced throttles participation deterministically to smooth
	// spend across the configured horizon, hard-stopping at the cap.
	PolicyPaced = budget.PolicyPaced
)

// AttachBudgets overlays per-advertiser daily budgets on a generated
// instance, scaled so an on-target advertiser exhausts its cap after
// roughly meanAuctions auctions (uniform in [0.5, 1.5)×). The base
// population draws are untouched.
func AttachBudgets(seed int64, inst *SimInstance, meanAuctions float64) {
	workload.AttachBudgets(rand.New(rand.NewSource(seed)), inst, meanAuctions)
}

// NewSimWorldBudget is NewSimWorldPriced with budget enforcement: the
// sequential world owns a single-lane ledger over inst.Budget (exact,
// staleness-free — one market sees all keywords), reachable via
// World.BudgetLane().Ledger().
func NewSimWorldBudget(inst *SimInstance, m SimMethod, pricing SimPricing, clickSeed int64, cfg BudgetConfig) *SimWorld {
	return strategy.NewWorldBudget(inst, m, pricing, clickSeed, cfg)
}

// Durable budgets (the internal/journal subsystem): budget spend is
// the one piece of engine state that must legally survive a restart,
// and the spend journal makes it do so — an append-only checksummed
// record log with periodic snapshot compaction, crash recovery that
// reconstructs ledger totals bit-exactly from snapshot + tail, and
// journaled epochs for churn rebuilds and budget resets. Attach via
// EngineConfig.Journal (the engine owns and closes the writer) or
// BudgetLedger.AttachJournal directly; resume a crashed process with
// RecoverSpendJournal + EngineConfig.Restore.
type (
	// SpendJournal is the durable journal writer (journal.Writer).
	SpendJournal = journal.Writer
	// SpendJournalOptions tunes fsync policy, snapshot-compaction
	// interval, and batch sizing.
	SpendJournalOptions = journal.Options
	// SpendJournalStats is a point-in-time writer summary.
	SpendJournalStats = journal.Stats
	// SpendJournalRecovery is the result of replaying a journal
	// directory: the recovered state plus replay/corruption
	// diagnostics.
	SpendJournalRecovery = journal.Recovery
	// SpendLedgerState is the journal's view of a budget ledger — what
	// recovery returns and EngineConfig.Restore consumes.
	SpendLedgerState = journal.LedgerState
)

// Journal fsync policies: FsyncNever survives process crashes (records
// reach the kernel before AppendSpend returns), FsyncAlways also
// survives power loss at a large throughput cost.
const (
	FsyncNever  = journal.FsyncNever
	FsyncAlways = journal.FsyncAlways
)

// OpenSpendJournal opens (creating if needed) the spend journal in
// dir. Attach it to a ledger via EngineConfig.Journal or
// BudgetLedger.AttachJournal before serving.
func OpenSpendJournal(dir string, opts SpendJournalOptions) (*SpendJournal, error) {
	return journal.Open(dir, opts)
}

// RecoverSpendJournal replays the journal directory and returns the
// recovered ledger state (bitwise equal to the last flushed spend)
// plus diagnostics. Corruption is reported, never fatal: the longest
// valid prefix is recovered.
func RecoverSpendJournal(dir string) (*SpendJournalRecovery, error) {
	return journal.Recover(dir)
}

// RestoreBudgetLedger rebuilds a budget ledger from a recovered
// journal state: every advertiser resumes with exactly the journaled
// spend. budgets come from the instance (population state is not
// journaled); pass inst.Budget.
func RestoreBudgetLedger(st *SpendLedgerState, budgets []float64, cfg BudgetConfig) *BudgetLedger {
	return budget.NewLedgerState(st, budgets, cfg)
}

// Networked serving tier (internal/wire + internal/server +
// internal/client): a StreamServer behind TCP speaking a
// length-prefixed, CRC-checked binary frame protocol, with
// per-connection windowed admission control layered over the stream
// policy, and a pipelined client driver on the other end.
type (
	// NetServer is a listening networked serving tier (server.Server):
	// a StreamServer wrapped in the wire protocol with a connection
	// cap, per-connection in-flight windows, and the exact four-way
	// accounting identity submitted == served + shed + rejected.
	NetServer = server.Server
	// NetServerConfig tunes the networked tier — the wrapped
	// StreamConfig plus connection cap, window size, frame limit, and
	// handshake/drain timeouts.
	NetServerConfig = server.Config
	// NetClient is one client connection (client.Conn): synchronous
	// typed calls, safe for concurrent use — concurrent callers
	// pipeline onto the single connection up to its window.
	NetClient = client.Conn
	// NetClientOptions tunes a client connection (window, timeouts).
	NetClientOptions = client.Options
	// NetOutcome is an auction outcome as decoded from the wire,
	// bit-exact with the serving engine's outcome.
	NetOutcome = wire.Outcome
	// NetBatchResult aggregates one batch-submit call.
	NetBatchResult = wire.BatchResult
	// NetServerStats is the server-side stats snapshot a client can
	// request over the wire (also returned by a graceful drain).
	NetServerStats = wire.ServerStats
	// NetServerStatsV2 is the extended stats snapshot: the counter
	// block plus the server's lifetime auction-latency histogram, so a
	// remote client can compute any percentile without a metrics
	// endpoint (NetClient.StatsV2).
	NetServerStatsV2 = wire.ServerStatsV2
)

// ListenNetServer builds the stream server over inst, binds addr
// (e.g. "127.0.0.1:0"), and starts accepting wire-protocol clients.
func ListenNetServer(addr string, inst *SimInstance, cfg NetServerConfig) (*NetServer, error) {
	return server.Listen(addr, inst, cfg)
}

// DialNetClient connects to a NetServer (or auctionsim -serve) and
// performs the protocol handshake.
func DialNetClient(addr string, opts NetClientOptions) (*NetClient, error) {
	return client.Dial(addr, opts)
}

// Observability (internal/obs): every serving layer above records
// into a preregistered metrics registry — padded per-shard atomic
// counters, single-writer float cells, render-time gauges, and
// fixed-bucket log-scale latency histograms — with wait-free,
// zero-allocation writes on the hot path. Engine.Metrics() exposes a
// serving stack's registry (the stream and networked tiers share
// their engine's); ServeMetrics puts it behind HTTP as Prometheus
// text plus pprof, and a TraceRing holds sampled per-auction
// lifecycle traces.
type (
	// MetricsRegistry is a fixed set of named metrics rendered in
	// Prometheus text exposition format (obs.Registry).
	MetricsRegistry = obs.Registry
	// MetricsCounter is a monotone counter striped into per-lane
	// padded cells — wait-free Add/Inc, aggregated at read.
	MetricsCounter = obs.Counter
	// MetricsFloatCounter accumulates float64 sums in single-writer
	// lanes, bit-for-bit equal to sequential accumulation per lane.
	MetricsFloatCounter = obs.FloatCounter
	// LatencyHistogram is a fixed-bucket log-scale histogram:
	// lock-free recording, quantiles within 3.2% relative error.
	LatencyHistogram = obs.Histogram
	// LatencySnapshot is a point-in-time histogram copy with
	// Quantile and Merge.
	LatencySnapshot = obs.HistSnapshot
	// EngineMetrics is the serving stack's instrument set
	// (engine.Metrics), reachable from Engine.Metrics().
	EngineMetrics = engine.Metrics
	// TraceRing is a fixed-capacity ring of sampled per-auction
	// lifecycle traces (obs.TraceRing), JSON-dumpable.
	TraceRing = obs.TraceRing
	// TraceEvent is one sampled auction's lifecycle timestamps.
	TraceEvent = obs.TraceEvent
	// MetricsServer is a live HTTP exposition endpoint
	// (obs.HTTPServer): /metrics, /debug/pprof, /trace.
	MetricsServer = obs.HTTPServer
)

// NewMetricsRegistry builds an empty registry for callers composing
// their own instruments (the serving stack builds its own — see
// Engine.Metrics).
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// ServeMetrics exposes reg (and, when ring is non-nil, the trace
// dump) over HTTP on addr ("127.0.0.1:0" binds an ephemeral port).
func ServeMetrics(addr string, reg *MetricsRegistry, ring *TraceRing) (*MetricsServer, error) {
	return obs.Serve(addr, reg, ring)
}

// GenerateInstance draws a Section V workload: n advertisers, k
// slots, the given keyword count, click values uniform on {0,…,50},
// slot-interval click probabilities.
func GenerateInstance(seed int64, n, k, keywords int) *SimInstance {
	return workload.Generate(rand.New(rand.NewSource(seed)), n, k, keywords)
}

// GenerateHeavyInstance is GenerateInstance plus the Section III-F
// population overlay: each advertiser is independently a heavyweight
// with probability heavyFrac, and shadow sets the click-shadowing
// strength heavyweights exert on slots below them (SimHeavy markets
// condition click probabilities on the realized heavyweight pattern
// through it).
func GenerateHeavyInstance(seed int64, n, k, keywords int, heavyFrac, shadow float64) *SimInstance {
	return workload.GenerateHeavy(rand.New(rand.NewSource(seed)), n, k, keywords, heavyFrac, shadow)
}

// QueryStream draws t queries, one uniform keyword each.
func QueryStream(inst *SimInstance, seed int64, t int) []int {
	return inst.Queries(rand.New(rand.NewSource(seed)), t)
}

// Section V workload defaults. MaxClickValue is the P in the budget
// subsystem's K·R·P overspend bound — the largest per-auction charge
// the workload generator can draw.
const (
	DefaultSlots    = workload.DefaultSlots
	DefaultKeywords = workload.DefaultKeywords
	MaxClickValue   = workload.MaxClickValue
)
