package ssa

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// TestQuickstartDocExample keeps the package-comment example honest.
func TestQuickstartDocExample(t *testing.T) {
	model := NewModel(2, 2)
	model.Click[0][0], model.Click[0][1] = 0.7, 0.4
	model.Click[1][0], model.Click[1][1] = 0.6, 0.3
	auction := &Auction{
		Slots: 2,
		Probs: model,
		Advertisers: []Advertiser{
			{ID: "nike", Bids: MustParseBids("Click : 5\nPurchase : 20")},
			{ID: "adidas", Bids: MustParseBids("Click AND Slot1 : 9")},
		},
	}
	res, err := auction.Determine(RH)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assigned() != 2 {
		t.Fatalf("both advertisers should win a slot: %+v", res)
	}
	brute, err := auction.Determine(Brute)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ExpectedRevenue-brute.ExpectedRevenue) > 1e-9 {
		t.Fatalf("RH %g != brute %g", res.ExpectedRevenue, brute.ExpectedRevenue)
	}
}

func TestFacadeParsers(t *testing.T) {
	f, err := ParseFormula("Click AND (Slot1 OR Slot2)")
	if err != nil {
		t.Fatal(err)
	}
	if !OneDependent(f) {
		t.Fatal("click/slot formula should be 1-dependent")
	}
	if OneDependent(MustParseFormula("Adv(x)@1")) {
		t.Fatal("rival-position formula must not be 1-dependent")
	}
	if _, err := ParseBids("Click 5"); err == nil {
		t.Fatal("bad bids text should error")
	}
	bids := MustParseBids("Purchase : 5\nSlot1 OR Slot2 : 2")
	if got := bids.Payment(Outcome{Slot: 1, Clicked: true, Purchased: true}); got != 7 {
		t.Fatalf("Figure 3 payment = %g, want 7", got)
	}
}

func TestFacadeMethodsAgreeOnSimulation(t *testing.T) {
	inst := GenerateInstance(3, 60, 4, 5)
	queries := QueryStream(inst, 4, 150)
	a := NewSimWorld(inst, SimRH, 99)
	b := NewSimWorld(inst, SimRHTALU, 99)
	for _, q := range queries {
		oa, ob := a.RunAuction(q), b.RunAuction(q)
		if math.Abs(oa.Revenue-ob.Revenue) > 1e-9 {
			t.Fatalf("facade sim divergence: %g vs %g", oa.Revenue, ob.Revenue)
		}
	}
}

func TestFacadeProgramCompile(t *testing.T) {
	prog, err := CompileProgram(`SET x = 1 + 2;`)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDB()
	if err := prog.Install(db); err != nil {
		t.Fatal(err)
	}
	v, ok := db.Scalar("x")
	if !ok || v.F != 3 {
		t.Fatalf("x = %v %v", v, ok)
	}
	if _, err := CompileProgram("UPDATE"); err == nil {
		t.Fatal("bad program should not compile")
	}
}

func TestFacadeErrNotOneDependent(t *testing.T) {
	model := NewModel(2, 2)
	auction := &Auction{
		Slots: 2,
		Probs: model,
		Advertisers: []Advertiser{
			// "I am in slot 1 AND b is in slot 2" depends on two
			// advertisers' placements: 2-dependent, rejected.
			{ID: "a", Bids: Bids{{F: MustParseFormula("Slot1 AND Adv(b)@2"), Value: 3}}},
			{ID: "b", Bids: MustParseBids("Click : 1")},
		},
	}
	_, err := auction.Determine(RH)
	if !errors.Is(err, ErrNotOneDependent) {
		t.Fatalf("err = %v", err)
	}
	if err == nil || !strings.Contains(err.Error(), "APX-hard") {
		t.Fatalf("error should cite hardness: %v", err)
	}
}

// TestFacadeSingleOtherBidAccepted: an event depending on exactly one
// OTHER advertiser's slot is still 1-dependent (Definition 1), and
// Theorem 2's construction attributes it to that advertiser's row —
// e.g. a sponsorship: "I pay 6 if brand b appears in slot 1."
func TestFacadeSingleOtherBidAccepted(t *testing.T) {
	model := NewModel(2, 2)
	model.Click[0][0], model.Click[0][1] = 0.5, 0.25
	model.Click[1][0], model.Click[1][1] = 0.5, 0.25
	auction := &Auction{
		Slots: 2,
		Probs: model,
		Advertisers: []Advertiser{
			{ID: "fan", Bids: Bids{
				{F: MustParseFormula("Adv(b)@1"), Value: 6},
				{F: MustParseFormula("Click"), Value: 2},
			}},
			{ID: "b", Bids: MustParseBids("Click : 4")},
		},
	}
	res, err := auction.Determine(RH)
	if err != nil {
		t.Fatal(err)
	}
	// Best allocation: b in slot 1 (0.5·4 own + 6 sponsorship), fan in
	// slot 2 (0.25·2) = 2 + 6 + 0.5 = 8.5. The outcome-level oracle
	// must agree.
	general, err := auction.DetermineGeneral()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ExpectedRevenue-general.ExpectedRevenue) > 1e-9 {
		t.Fatalf("RH %g != general %g", res.ExpectedRevenue, general.ExpectedRevenue)
	}
	if math.Abs(res.ExpectedRevenue-8.5) > 1e-9 {
		t.Fatalf("revenue %g, want 8.5", res.ExpectedRevenue)
	}
	if res.AdvOf[0] != 1 {
		t.Fatalf("slot 1 should hold b, got %d", res.AdvOf[0])
	}
}

func TestFacadeHeavyAuction(t *testing.T) {
	base := NewModel(3, 2)
	for i := 0; i < 3; i++ {
		base.Click[i][0], base.Click[i][1] = 0.6, 0.3
	}
	h := &HeavyAuction{
		Slots: 2,
		Advertisers: []Advertiser{
			{ID: "big", Bids: MustParseBids("Click : 10"), Heavy: true},
			{ID: "small1", Bids: MustParseBids("Click : 8\nSlot2 AND NOT Heavy1 : 5")},
			{ID: "small2", Bids: MustParseBids("Click : 6")},
		},
		Model: &HeavyModel{Base: base, Factor: ShadowFactors(2, 0.5)},
	}
	serial, err := h.Determine(false)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := h.Determine(true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(serial.ExpectedRevenue-parallel.ExpectedRevenue) > 1e-9 {
		t.Fatalf("serial %g != parallel %g", serial.ExpectedRevenue, parallel.ExpectedRevenue)
	}
}

func TestGenerateInstanceDefaults(t *testing.T) {
	inst := GenerateInstance(1, 50, DefaultSlots, DefaultKeywords)
	if inst.Slots != 15 || inst.Keywords != 10 || inst.N != 50 {
		t.Fatalf("unexpected shape: %+v", inst)
	}
}

// TestStreamServerPublicAPI drives the whole open-world surface
// exported by this package: a SimStream with scripted churn feeds a
// StreamServer, the churn events are applied live, and the final
// drain accounts every query.
func TestStreamServerPublicAPI(t *testing.T) {
	inst := GenerateInstance(51, 80, 6, DefaultKeywords)
	const queries = 1500
	churn := ScriptChurn(52, inst, 4, queries)
	src := NewSimStream(inst, 53, SimStreamConfig{
		Queries: queries, QPS: 1e6, ZipfS: 1.2, BurstFactor: 3, Churn: churn,
	})
	s := NewStreamServer(inst, StreamConfig{
		Engine:   EngineConfig{Shards: 3, QueueDepth: 32, Method: SimRHTALU, ClickSeed: 54},
		Overload: OverloadBlock,
	})
	for {
		ev, ok := src.Next()
		if !ok {
			break
		}
		if ev.Churn != nil {
			if ev.Churn.Add != nil {
				if _, err := s.AddAdvertiser(*ev.Churn.Add); err != nil {
					t.Fatal(err)
				}
			} else if err := s.RemoveAdvertiser(ev.Churn.Remove); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if !s.Submit(ev.Keyword) {
			t.Fatal("block-policy Submit rejected on an open server")
		}
	}
	st := s.Close()
	if st.Submitted != queries || st.Served != queries || st.Shed != 0 {
		t.Fatalf("accounting: %+v", st)
	}
	if st.Epoch != len(churn) {
		t.Fatalf("applied %d churn events, want %d", st.Epoch, len(churn))
	}
	// ScriptChurn alternates add/remove starting with an add: 2 adds,
	// 2 removes over 4 events.
	if st.Advertisers != inst.N {
		t.Fatalf("final population %d, want %d", st.Advertisers, inst.N)
	}
	if st.Throughput <= 0 || st.P99 <= 0 {
		t.Fatalf("missing serving stats: %+v", st)
	}
}
